/**
 * @file
 * Figure 9a: ExTensor memory traffic on the five validation matrices,
 * normalized to the algorithmic minimum, broken down by tensor
 * (A, B, Z) plus partial outputs (PO), Reported vs TeAAL.
 */
#include "common.hpp"

int
main()
{
    using namespace teaal;
    const double scale = bench::matrixScale();
    bench::header("Figure 9a: ExTensor memory traffic "
                  "(normalized to algorithmic minimum)",
                  scale);

    TextTable table("ExTensor normalized DRAM traffic");
    table.setHeader({"matrix", "reported(approx)", "teaal", "A", "B",
                     "Z", "PO"});
    std::vector<double> ours, reported;
    // One compiled model serves every validation matrix.
    auto model = compiler::compile(accel::extensor());
    for (const std::string& key : bench::validationKeys()) {
        const auto in = bench::loadSpmspm(key, scale);
        const compiler::Workload w = bench::workloadOf(in);
        const auto result = model.run(w, bench::singleShot());
        const double min_bytes = model.algorithmicMinBytes(w, result);
        auto norm = [&](const std::string& tensor) {
            const auto it = result.traffic.find(tensor);
            return it == result.traffic.end()
                       ? 0.0
                       : it->second.total() / min_bytes;
        };
        double po = 0;
        for (const auto& [t, tr] : result.traffic)
            po += tr.poBytes;
        const double total = result.totalTrafficBytes() / min_bytes;
        table.addRow({key,
                      TextTable::num(
                          bench::reportedExtensorTraffic().at(key), 2),
                      TextTable::num(total, 2), TextTable::num(norm("A"), 2),
                      TextTable::num(norm("B"), 2),
                      TextTable::num(norm("Z"), 2),
                      TextTable::num(po / min_bytes, 2)});
        ours.push_back(total);
        reported.push_back(bench::reportedExtensorTraffic().at(key));
    }
    table.addSeparator();
    table.addRow({"mean-abs-err%",
                  TextTable::num(meanAbsRelErrorPct(ours, reported), 1),
                  "(vs digitized reported)"});
    table.print();
    return 0;
}
