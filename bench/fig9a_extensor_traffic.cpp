/**
 * @file
 * Figure 9a: ExTensor memory traffic on the five validation matrices,
 * normalized to the algorithmic minimum, broken down by tensor
 * (A, B, Z) plus partial outputs (PO), Reported vs TeAAL.
 */
#include "common.hpp"

int
main()
{
    using namespace teaal;
    const double scale = bench::matrixScale();
    bench::header("Figure 9a: ExTensor memory traffic "
                  "(normalized to algorithmic minimum)",
                  scale);

    TextTable table("ExTensor normalized DRAM traffic");
    table.setHeader({"matrix", "reported(approx)", "teaal", "A", "B",
                     "Z", "PO"});
    std::vector<double> ours, reported;
    for (const std::string& key : bench::validationKeys()) {
        const auto in = bench::loadSpmspm(key, scale);
        compiler::Simulator sim(accel::extensor());
        const auto result =
            sim.run({{"A", in.a.clone()}, {"B", in.b.clone()}});
        const double min_bytes =
            sim.algorithmicMinBytes(result.tensors);
        auto norm = [&](const std::string& tensor) {
            const auto it = result.traffic.find(tensor);
            return it == result.traffic.end()
                       ? 0.0
                       : it->second.total() / min_bytes;
        };
        double po = 0;
        for (const auto& [t, tr] : result.traffic)
            po += tr.poBytes;
        const double total = result.totalTrafficBytes() / min_bytes;
        table.addRow({key,
                      TextTable::num(
                          bench::reportedExtensorTraffic().at(key), 2),
                      TextTable::num(total, 2), TextTable::num(norm("A"), 2),
                      TextTable::num(norm("B"), 2),
                      TextTable::num(norm("Z"), 2),
                      TextTable::num(po / min_bytes, 2)});
        ours.push_back(total);
        reported.push_back(bench::reportedExtensorTraffic().at(key));
    }
    table.addSeparator();
    table.addRow({"mean-abs-err%",
                  TextTable::num(meanAbsRelErrorPct(ours, reported), 1),
                  "(vs digitized reported)"});
    table.print();
    return 0;
}
