/**
 * @file
 * Parallel sharded execution microbench: wall time and speedup of
 * CompiledModel::run at 1/2/4/8 worker threads on all four Table 1
 * accelerators — Gamma and ExTensor (disjoint sharding), OuterSpace
 * (disjoint, linear-combine cascade), and SIGMA (reduction sharding
 * of the contraction-outermost Z nest) — plus the serial-overhead
 * check — threads=1 must stay within noise of the classic serial
 * path, because it *is* the classic serial path.
 *
 * Run-to-run determinism is exercised too: every thread count must
 * produce identical traffic and records (the engine guarantees
 * byte-identical counters and trace batches at any N; see
 * exec/executor.hpp). A violation aborts the bench.
 *
 * Emits bench::jsonRow lines keyed by (accel, dataset, threads) with
 * `wall_ms` for the CI perf differ.
 */
#include <cstdlib>
#include <iostream>

#include "common.hpp"

namespace
{

using namespace teaal;

void
runOne(const std::string& accel_name, compiler::Specification spec,
       const std::string& dataset, const bench::SpmspmInput& in,
       TextTable& table)
{
    auto model = compiler::compile(std::move(spec));
    const compiler::Workload w = bench::workloadOf(in);

    // Reference result (serial) for the determinism check.
    const compiler::SimulationResult ref = model.run(w);

    double t1_ms = 0;
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        compiler::RunOptions opts;
        opts.threads = threads;
        const double secs =
            bench::bestSeconds([&]() { (void)model.run(w, opts); }, 3);
        const double wall_ms = secs * 1e3;
        if (threads == 1)
            t1_ms = wall_ms;
        const double speedup = t1_ms / wall_ms;

        // Determinism: counters and traffic identical at every N.
        const compiler::SimulationResult got = model.run(w, opts);
        for (const auto& [tensor, tt] : ref.traffic) {
            const auto it = got.traffic.find(tensor);
            if (it == got.traffic.end() ||
                it->second.readBytes != tt.readBytes ||
                it->second.writeBytes != tt.writeBytes ||
                it->second.poBytes != tt.poBytes) {
                std::cerr << "DETERMINISM VIOLATION: " << accel_name
                          << "/" << dataset << " threads=" << threads
                          << " tensor=" << tensor << "\n";
                std::exit(1);
            }
        }

        table.addRow({accel_name, dataset, std::to_string(threads),
                      TextTable::num(wall_ms, 2),
                      TextTable::num(speedup, 2) + "x"});
        bench::jsonRow(std::cout, "micro_parallel",
                       {{"accel", accel_name}, {"dataset", dataset}},
                       {{"speedup_vs_serial", speedup}}, threads,
                       wall_ms);
    }
    table.addSeparator();
}

} // namespace

int
main()
{
    const double scale = bench::matrixScale();
    bench::header("parallel sharded execution: run(threads=N) wall "
                  "time and speedup",
                  scale);

    TextTable table("CompiledModel::run by worker threads "
                          "(best of 3; determinism checked per row)");
    table.setHeader({"accel", "dataset", "threads", "wall ms",
                     "speedup"});

    for (const std::string& key : {std::string("p2"), std::string("wi")}) {
        const bench::SpmspmInput in = bench::loadSpmspm(key, scale);
        runOne("gamma", accel::gamma({}), key, in, table);
        runOne("extensor", accel::extensor({}), key, in, table);
        runOne("outerspace", accel::outerSpace({}), key, in, table);
        runOne("sigma", accel::sigma({}), key, in, table);
    }

    table.print();
    std::cout << "\nnote: shard plans are fixed per workload, so "
                 "counters and replayed traces are byte-identical at "
                 "every thread count (output values too, up to fp "
                 "summation grouping under SIGMA's reduce merge); "
                 "speedup depends on host cores (the order-dependent "
                 "storage replay stays single-threaded by design — "
                 "it is the Amdahl floor).\n";
    return 0;
}
