/**
 * @file
 * Figure 10b: Gamma speedup over an MKL-class CPU baseline,
 * Reported vs TeAAL, on the five validation matrices.
 */
#include "common.hpp"

int
main()
{
    using namespace teaal;
    const double scale = bench::matrixScale();
    bench::header("Figure 10b: Gamma speedup over MKL", scale);

    TextTable table("Gamma speedup over MKL");
    table.setHeader({"matrix", "reported(approx)", "teaal",
                     "bottleneck"});
    std::vector<double> ours_v, reported_v;
    for (const std::string& key : bench::validationKeys()) {
        const auto in = bench::loadSpmspm(key, scale);
        const double mkl = baselines::cpuSpmspmSeconds(in.work);
        const auto result = bench::runAccelerator(accel::gamma(), in);
        const double ours = mkl / result.perf.totalSeconds;
        table.addRow({key,
                      TextTable::num(
                          bench::reportedGammaSpeedup().at(key), 1),
                      TextTable::num(ours, 1),
                      result.perf.blocks[0].bottleneck});
        ours_v.push_back(ours);
        reported_v.push_back(bench::reportedGammaSpeedup().at(key));
    }
    table.addSeparator();
    table.addRow({"mean-abs-err%", "-",
                  TextTable::num(
                      meanAbsRelErrorPct(ours_v, reported_v), 1)});
    table.print();
    return 0;
}
