/**
 * @file
 * Compile-once / run-many microbenchmark: what does each pipeline
 * stage cost, and what does a repeated run() actually pay?
 *
 *   parse+compile   Specification::parse + compiler::compile
 *                   (spec-only: recipes, fused blocks, resolved
 *                   binding/topology tables)
 *   first run       plan instantiation (tensor preparation, strategy
 *                   selection) + execution
 *   steady run      execution only — cached plans, nothing re-derived
 *   legacy          the deprecated Simulator::run path, which pays
 *                   instantiation every call
 *
 * The headline invariant: steady-state run() must cost measurably
 * less than compile + run (plan building is off the run path).
 * Emits bench::jsonRow lines for the CI perf artifact.
 */
#include <chrono>
#include <iostream>

#include "common.hpp"
#include "compiler/pipeline.hpp"

namespace
{

using Clock = std::chrono::steady_clock;

} // namespace

int
main()
{
    using namespace teaal;
    const double scale = bench::matrixScale();
    bench::header("micro_compile_vs_run: pipeline stage costs "
                  "(Gamma on the wiki-Vote stand-in)",
                  scale);

    const auto in = bench::loadSpmspm("wi", scale);
    const int iters = 5;

    // Stage 1: parse + compile (spec-only, no workload contact).
    const double compile_s = bench::bestSeconds(
        [&]() {
            auto model = compiler::compile(accel::gamma());
            (void)model;
        },
        iters);

    // Stage 2: first run on a fresh model — instantiation + execution.
    // A first run is one-shot per model, so each sample compiles a
    // fresh model *outside* the timed region.
    double first_run_s = 1e30;
    for (int i = 0; i < iters + 1; ++i) {
        auto fresh = compiler::compile(accel::gamma());
        const compiler::Workload w = bench::workloadOf(in);
        const auto t0 = Clock::now();
        (void)fresh.run(w);
        const auto t1 = Clock::now();
        if (i > 0) { // first sample is the warmup
            first_run_s = std::min(
                first_run_s,
                std::chrono::duration<double>(t1 - t0).count());
        }
    }

    // Stage 3: steady-state run on a warmed model — execution only.
    auto model = compiler::compile(accel::gamma());
    const compiler::Workload w = bench::workloadOf(in);
    (void)model.run(w); // warm the plan cache
    const double steady_run_s =
        bench::bestSeconds([&]() { (void)model.run(w); }, iters);

    // Legacy: the deprecated one-shot Simulator pays instantiation
    // (and input cloning) on every call.
    const double legacy_s = bench::bestSeconds(
        [&]() {
            compiler::Simulator sim(accel::gamma());
            (void)sim.run(
                {{"A", in.a.clone()}, {"B", in.b.clone()}});
        },
        iters);

    const double instantiation_s = first_run_s - steady_run_s;

    TextTable table("pipeline stage costs (best of " +
                    std::to_string(iters) + ")");
    table.setHeader({"stage", "ms", "vs steady run"});
    auto row = [&](const std::string& name, double s) {
        table.addRow({name, TextTable::num(s * 1e3, 3),
                      TextTable::num(s / steady_run_s, 2) + "x"});
    };
    row("parse+compile", compile_s);
    row("first run (instantiate+execute)", first_run_s);
    row("steady run (execute only)", steady_run_s);
    row("legacy Simulator::run", legacy_s);
    table.addSeparator();
    row("plan instantiation (derived)", instantiation_s);
    table.print();

    bench::jsonRow(std::cout, "micro_compile_vs_run", {{"accel", "gamma"}},
                   {{"compile_ms", compile_s * 1e3},
                    {"first_run_ms", first_run_s * 1e3},
                    {"steady_run_ms", steady_run_s * 1e3},
                    {"legacy_run_ms", legacy_s * 1e3},
                    {"instantiation_ms", instantiation_s * 1e3},
                    {"steady_vs_compile_plus_run",
                     steady_run_s / (compile_s + first_run_s)}},
                   /*threads=*/1, /*wall_ms=*/steady_run_s * 1e3);

    const bool ok = steady_run_s < compile_s + first_run_s;
    std::cout << "\ncompile-once invariant (steady run < compile + "
                 "run): "
              << (ok ? "HOLDS" : "VIOLATED") << "\n";
    return ok ? 0 : 1;
}
