/**
 * @file
 * Table 4: dataset characteristics — the published numbers next to
 * what the synthetic stand-ins actually produce at full scale.
 */
#include "common.hpp"

int
main()
{
    using namespace teaal;
    TextTable table("Table 4: tensor datasets (stand-ins synthesized)");
    table.setHeader({"matrix", "shape", "published nnz",
                     "stand-in nnz", "domain", "structure"});
    for (const auto& info : workloads::table4()) {
        // Large graphs are sampled at reduced scale to keep this
        // printer quick; nnz is extrapolated back.
        const double scale = info.nnz > 1000000 ? 0.05 : 1.0;
        const auto t =
            workloads::synthesize(info, "A", 99, scale);
        const auto nnz = static_cast<std::size_t>(
            static_cast<double>(t.nnz()) / scale);
        const char* structure =
            info.structure == workloads::Structure::PowerLaw
                ? "power-law"
                : (info.structure == workloads::Structure::QuasiUniform
                       ? "quasi-uniform"
                       : "uniform");
        table.addRow({info.key + " (" + info.name + ")",
                      std::to_string(info.rows) + " x " +
                          std::to_string(info.cols),
                      std::to_string(info.nnz), std::to_string(nnz),
                      info.domain, structure});
    }
    table.print();
    return 0;
}
