/**
 * @file
 * Figure 9c: OuterSPACE memory traffic on the five validation
 * matrices, normalized to the algorithmic minimum, including the
 * partial-product tensor T (written by the multiply phase, re-read by
 * the merge phase through the linked-list format).
 */
#include "common.hpp"

int
main()
{
    using namespace teaal;
    const double scale = bench::matrixScale();
    bench::header("Figure 9c: OuterSPACE memory traffic "
                  "(normalized to algorithmic minimum)",
                  scale);

    TextTable table("OuterSPACE normalized DRAM traffic");
    table.setHeader(
        {"matrix", "reported(approx)", "teaal", "A", "B", "Z", "T"});
    std::vector<double> ours, reported;
    // One compiled model serves every validation matrix.
    auto model = compiler::compile(accel::outerSpace());
    for (const std::string& key : bench::validationKeys()) {
        const auto in = bench::loadSpmspm(key, scale);
        const compiler::Workload w = bench::workloadOf(in);
        const auto result = model.run(w, bench::singleShot());
        const double min_bytes = model.algorithmicMinBytes(w, result);
        auto norm = [&](const std::string& tensor) {
            const auto it = result.traffic.find(tensor);
            return it == result.traffic.end()
                       ? 0.0
                       : it->second.total() / min_bytes;
        };
        const double total = result.totalTrafficBytes() / min_bytes;
        table.addRow({key,
                      TextTable::num(
                          bench::reportedOuterSpaceTraffic().at(key), 2),
                      TextTable::num(total, 2),
                      TextTable::num(norm("A"), 2),
                      TextTable::num(norm("B"), 2),
                      TextTable::num(norm("Z"), 2),
                      TextTable::num(norm("T"), 2)});
        ours.push_back(total);
        reported.push_back(
            bench::reportedOuterSpaceTraffic().at(key));
    }
    table.addSeparator();
    table.addRow({"mean-abs-err%",
                  TextTable::num(meanAbsRelErrorPct(ours, reported), 1),
                  "(vs digitized reported)"});
    table.print();
    return 0;
}
