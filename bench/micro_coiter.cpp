/**
 * @file
 * Co-iteration strategy microbenchmark: two-finger vs gallop vs
 * dense-drive on uniform and skewed fiber pairs, at the strategy layer
 * (raw walks) and through the full engine (planned vs forced).
 *
 * The headline row is the skewed case (one driver >= 32x denser):
 * galloping intersection must beat the two-finger merge there, since
 * the sparse leader's binary-search leaps skip runs of the dense
 * fiber that two-finger walks element by element.
 *
 * Emits the human table plus bench::jsonRow machine-readable lines.
 */
#include <iostream>

#include "common.hpp"
#include "compiler/pipeline.hpp"
#include "exec/coiter_strategy.hpp"
#include "exec/executor.hpp"
#include "ir/plan.hpp"
#include "util/random.hpp"

namespace
{

using namespace teaal;

ft::Fiber
randomFiber(std::size_t nnz, ft::Coord space, std::uint64_t seed)
{
    Xoshiro256 rng(seed);
    ft::Fiber f(space);
    f.reserve(nnz);
    const auto gap = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(space) / nnz);
    ft::Coord c = 0;
    for (std::size_t i = 0; i < nnz; ++i) {
        c += 1 + static_cast<ft::Coord>(rng.below(2 * gap - 1));
        if (c >= space)
            break; // keep every coordinate in [0, shape)
        f.append(c, ft::Payload(1.0));
    }
    return f;
}

struct WalkResult
{
    double seconds = 0;
    std::size_t matches = 0;
};

WalkResult
timeStrategy(ir::CoiterStrategy s, const ft::Fiber& fa,
             const ft::Fiber& fb, int iters)
{
    const std::vector<ft::FiberView> views{ft::FiberView::whole(&fa),
                                           ft::FiberView::whole(&fb)};
    std::vector<std::size_t> pos(2), scans(2);
    std::vector<bool> present(2);
    WalkResult r;
    auto run = [&]() {
        std::size_t matches = 0;
        pos[0] = views[0].lo;
        pos[1] = views[1].lo;
        scans.assign(2, 0);
        switch (s) {
          case ir::CoiterStrategy::TwoFinger:
            exec::intersectTwoFinger(views, pos, scans,
                                     [&](ft::Coord) {
                                         ++matches;
                                         return true;
                                     });
            break;
          case ir::CoiterStrategy::Gallop: {
            const std::size_t lead =
                views[0].size() <= views[1].size() ? 0 : 1;
            exec::gallopIntersect(
                views[lead], views[1 - lead], scans[lead],
                scans[1 - lead],
                [&](ft::Coord, std::size_t, std::size_t) {
                    ++matches;
                    return true;
                });
            break;
          }
          case ir::CoiterStrategy::DenseDrive: {
            const ft::Coord extent =
                std::max(fa.shape(), fb.shape());
            exec::denseProbe(views, extent, false, pos, scans, present,
                             [&](ft::Coord) {
                                 ++matches;
                                 return true;
                             });
            break;
          }
        }
        r.matches = matches;
    };
    r.seconds = bench::bestSeconds(run, iters);
    return r;
}

/** Engine-level: SpMSpM with the K loop forced to each strategy via
 *  ExecOptions overrides — the shared plan is never copied or
 *  mutated, exactly how RunOptions::coiterOverrides ablates a
 *  compiled model. */
double
timeEngine(const ir::EinsumPlan& plan, ir::CoiterStrategy s, int iters)
{
    exec::ExecOptions opts;
    for (const ir::LoopRank& lr : plan.loops) {
        if (!lr.isUpperPartition)
            opts.coiterOverrides[lr.name] = s;
    }
    return bench::bestSeconds(
        [&]() {
            trace::Observer obs;
            exec::Executor ex(plan, obs, exec::Semiring::arithmetic(),
                              opts);
            ex.run();
        },
        iters);
}

} // namespace

int
main()
{
    using namespace teaal;

    std::cout << "# micro_coiter: co-iteration strategy comparison\n"
              << "# skewed case: one driver >= 32x denser; gallop must "
                 "win there\n\n";

    struct Case
    {
        std::string name;
        std::size_t nnzA;
        std::size_t nnzB;
    };
    const ft::Coord space = 1 << 20;
    const std::vector<Case> cases{
        {"uniform", 1u << 16, 1u << 16},
        {"skewed32x", 1u << 16, 1u << 11},
        {"skewed128x", 1u << 17, 1u << 10},
    };

    TextTable table("raw 2-fiber intersection walks");
    table.setHeader({"case", "strategy", "matches", "us/walk",
                     "vs 2finger"});
    for (const Case& c : cases) {
        const ft::Fiber fa = randomFiber(c.nnzA, space, 7);
        const ft::Fiber fb = randomFiber(c.nnzB, space, 9);
        const WalkResult two =
            timeStrategy(ir::CoiterStrategy::TwoFinger, fa, fb, 20);
        for (const auto s :
             {ir::CoiterStrategy::TwoFinger, ir::CoiterStrategy::Gallop,
              ir::CoiterStrategy::DenseDrive}) {
            // Dense probing a 1M-coordinate space is deliberately
            // included: it shows why the planner never picks it for
            // sparse drivers.
            const int iters =
                s == ir::CoiterStrategy::DenseDrive ? 3 : 20;
            const WalkResult r = timeStrategy(s, fa, fb, iters);
            const double speedup = two.seconds / r.seconds;
            table.addRow({c.name, ir::coiterStrategyName(s),
                          std::to_string(r.matches),
                          TextTable::num(r.seconds * 1e6, 1),
                          TextTable::num(speedup, 2) + "x"});
            bench::jsonRow(
                std::cout, "micro_coiter",
                {{"case", c.name},
                 {"strategy", ir::coiterStrategyName(s)}},
                {{"matches", static_cast<double>(r.matches)},
                 {"us_per_walk", r.seconds * 1e6},
                 {"speedup_vs_two_finger", speedup}},
                /*threads=*/1, /*wall_ms=*/r.seconds * 1e3);
        }
    }
    std::cout << "\n" << table.render() << "\n";

    // ---------------------------------------- engine-level comparison
    // SpMSpM where A's K fibers are dense and B's are sparse: the
    // planner picks gallop for the K loop on its own. Note the forced
    // TwoFinger row still benefits from the engine's runtime
    // leader-follower escape (>= 8x size skew per fiber pair), so the
    // end-to-end gap is smaller than the raw-walk gap above — the raw
    // table is the pure merge-vs-gallop comparison.
    const ft::Tensor a = workloads::uniformMatrix("A", 1 << 11, 256,
                                                  220000, 21, {"K", "M"});
    const ft::Tensor b = workloads::uniformMatrix("B", 1 << 11, 256, 6000,
                                                  23, {"K", "N"});
    const char* yaml_text = "einsum:\n"
                            "  declaration:\n"
                            "    A: [K, M]\n"
                            "    B: [K, N]\n"
                            "    Z: [M, N]\n"
                            "  expressions:\n"
                            "    - Z[m, n] = A[k, m] * B[k, n]\n";
    auto model =
        compiler::compile(compiler::Specification::parse(yaml_text));
    compiler::Workload w;
    w.add("A", a).add("B", b);
    const ir::EinsumPlan& plan = model.plans(w)[0];

    std::string planned = "2finger";
    for (const ir::LoopRank& lr : plan.loops) {
        if (lr.coiter == ir::CoiterStrategy::Gallop)
            planned = "gallop";
    }

    TextTable engine_table("engine SpMSpM (skewed drivers), K forced");
    engine_table.setHeader({"strategy", "ms/run", "vs 2finger"});
    const double two =
        timeEngine(plan, ir::CoiterStrategy::TwoFinger, 5);
    for (const auto s : {ir::CoiterStrategy::TwoFinger,
                         ir::CoiterStrategy::Gallop}) {
        const double secs = timeEngine(plan, s, 5);
        engine_table.addRow({ir::coiterStrategyName(s),
                             TextTable::num(secs * 1e3, 2),
                             TextTable::num(two / secs, 2) + "x"});
        bench::jsonRow(std::cout, "micro_coiter_engine",
                       {{"strategy", ir::coiterStrategyName(s)},
                        {"planned", planned}},
                       {{"ms_per_run", secs * 1e3},
                        {"speedup_vs_two_finger", two / secs}},
                       /*threads=*/1, /*wall_ms=*/secs * 1e3);
    }
    std::cout << "\n"
              << engine_table.render() << "\nplanner selected: " << planned
              << " for the skewed K loop\n";
    return 0;
}
