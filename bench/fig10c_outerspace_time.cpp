/**
 * @file
 * Figure 10c: OuterSPACE execution time on uniformly random synthetic
 * matrices (dimension/density pairs from the figure's x-axis),
 * comparing the TeAAL model against the original-simulator proxy.
 *
 * The paper found the TeAAL model consistently ~80% faster than the
 * original simulator with a consistent trend (attributed to an
 * undocumented PE microarchitecture feature); the "original(proxy)"
 * column applies that published 1.8x factor to our model, so what
 * this bench validates is the *trend across the density sweep*.
 */
#include "common.hpp"

int
main()
{
    using namespace teaal;
    const double scale = bench::matrixScale();
    bench::header("Figure 10c: OuterSPACE execution time, "
                  "uniform synthetic sweep",
                  scale);

    struct Point
    {
        ft::Coord dim;
        double density;
    };
    // The figure's x-axis: dimension/density with ~200K nnz each.
    const std::vector<Point> sweep{{4986, 8.0e-3},
                                   {9987, 2.0e-3},
                                   {19937, 5.0e-4},
                                   {39888, 1.3e-4},
                                   {79730, 3.1e-5}};

    TextTable table("OuterSPACE execution time (ms)");
    table.setHeader({"dim/density", "original(proxy)", "teaal",
                     "traffic (MB)"});
    for (const Point& p : sweep) {
        const auto dim =
            static_cast<ft::Coord>(static_cast<double>(p.dim) * scale);
        const auto nnz = static_cast<std::size_t>(
            static_cast<double>(dim) * static_cast<double>(dim) *
            p.density);
        bench::SpmspmInput in{
            workloads::uniformMatrix("A", dim, dim, nnz, 11,
                                     {"K", "M"}),
            workloads::uniformMatrix("B", dim, dim, nnz, 12,
                                     {"K", "N"}),
            {}};
        const auto result =
            bench::runAccelerator(accel::outerSpace(), in);
        const double ms = result.perf.totalSeconds * 1e3;
        table.addRow({std::to_string(p.dim) + "/" +
                          TextTable::num(p.density, 5),
                      TextTable::num(ms * 1.8, 3), TextTable::num(ms, 3),
                      TextTable::num(result.totalTrafficBytes() / 1e6,
                                     1)});
    }
    table.print();
    std::cout << "\nDenser, smaller matrices produce more partial-"
                 "product collisions per row; sparser, larger ones "
                 "stream more metadata — the U-shape of the figure.\n";
    return 0;
}
