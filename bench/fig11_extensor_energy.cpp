/**
 * @file
 * Figure 11: ExTensor energy (mJ) on the five validation matrices,
 * Reported vs TeAAL, plus the arithmetic mean (AM) the figure plots.
 *
 * Measured energy is extrapolated from the bench scale to full size
 * by the work ratio (energy is dominated by DRAM traffic + compute,
 * both ~linear in nnz at fixed structure).
 */
#include "common.hpp"

int
main()
{
    using namespace teaal;
    const double scale = bench::matrixScale();
    bench::header("Figure 11: ExTensor energy (mJ)", scale);

    TextTable table("ExTensor energy");
    table.setHeader({"matrix", "reported(approx)", "teaal(extrap)",
                     "measured@scale"});
    std::vector<double> ours_v, reported_v;
    for (const std::string& key : bench::validationKeys()) {
        const auto in = bench::loadSpmspm(key, scale);
        const auto result =
            bench::runAccelerator(accel::extensor(), in);
        const double measured = result.energy.totalMilliJoules();
        // Work scales ~1/scale^2 for A x A style workloads (both
        // operands shrink).
        const double extrapolated = measured / (scale * scale);
        table.addRow({key,
                      TextTable::num(
                          bench::reportedExtensorEnergyMj().at(key), 1),
                      TextTable::num(extrapolated, 1),
                      TextTable::num(measured, 2)});
        ours_v.push_back(extrapolated);
        reported_v.push_back(
            bench::reportedExtensorEnergyMj().at(key));
    }
    table.addSeparator();
    table.addRow(
        {"AM", TextTable::num(arithMean(reported_v), 1),
         TextTable::num(arithMean(ours_v), 1), "-"});
    table.addRow({"mean-abs-err%", "-",
                  TextTable::num(
                      meanAbsRelErrorPct(ours_v, reported_v), 1)});
    table.print();
    return 0;
}
