/**
 * @file
 * Out-of-core microbench (PR 10): the two costs the mmap store and
 * the trace spill layer exist to remove.
 *
 * 1. Cold start. A ~10x-validation-scale power-law matrix is written
 *    as Matrix Market and as a packed store (what `teaal-pack` emits);
 *    the bench times parse+pack against storage::mapStore of the same
 *    bytes. The mmap path must be >= 50x faster — it reads a 64-byte
 *    prologue plus a small header and binds section pointers, while
 *    the text path tokenizes tens of megabytes. A violation aborts
 *    the bench (exit 1), same contract as micro_parallel's
 *    determinism check.
 *
 * 2. Spilled vs resident sharded replay. The same big matrix drives a
 *    Gamma SpMSpM against a diagonal B (linear work — the input is
 *    huge, the compute is not), threads = 4, once with
 *    RunOptions::spillDir set and once resident. The spilled run goes
 *    FIRST; because VmHWM is a process-lifetime high-water mark, the
 *    later resident run can only push it higher — and must, since it
 *    keeps every captured slice log in memory at once. The bench
 *    asserts exactly that ordering (spilled peak < resident peak),
 *    proving the spill bound without comparing absolute RSS across
 *    machines. Requires /proc/self/status (skipped gracefully
 *    elsewhere).
 *
 * Emits bench::jsonRow lines (phase = parse_pack | mmap | spilled |
 * resident) for the CI artifact; the threads=1 cold-start rows feed
 * the ci/perf_diff.py wall-time gate.
 */
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common.hpp"
#include "storage/packed.hpp"
#include "storage/store.hpp"
#include "workloads/mtx.hpp"

namespace
{

using namespace teaal;
namespace fs = std::filesystem;

/** Peak resident set size (VmHWM) in KiB; 0 when unavailable. */
std::size_t
peakRssKb()
{
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) == 0) {
            std::istringstream is(line.substr(6));
            std::size_t kb = 0;
            is >> kb;
            return kb;
        }
    }
    return 0;
}

double
onceSeconds(const std::function<void()>& fn)
{
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main()
{
    const double scale = bench::matrixScale();
    bench::header("out-of-core: mmap cold start + disk-spilled replay",
                  scale);

    // ~10x the largest validation matrix (em, Table 4), scaled like
    // every other bench. At the default 0.35 that is ~1.3M nonzeros —
    // a ~40 MB Matrix Market file.
    const workloads::DatasetInfo& em = workloads::dataset("em");
    const auto rows = static_cast<ft::Coord>(
        static_cast<double>(em.rows) * scale);
    const auto big_nnz = static_cast<std::size_t>(
        static_cast<double>(em.nnz) * 10.0 * scale);
    const ft::Tensor big = workloads::powerLawMatrix(
        "A", rows, rows, big_nnz, 97, {"K", "M"});

    const fs::path dir =
        fs::temp_directory_path() / "teaal_micro_outofcore";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string mtx_path = (dir / "big.mtx").string();
    const std::string store_path = (dir / "big.teaal").string();
    workloads::writeMatrixMarket(mtx_path, big);
    storage::writeStore(store_path,
                        storage::PackedTensor::fromTensor(big));

    TextTable table("out-of-core");
    table.setHeader({"phase", "wall ms", "vs parse+pack",
                     "peak RSS MB"});

    // ---- 1. cold start: parse+pack vs mmap --------------------------
    storage::PackedTensor parsed;
    const double parse_s = onceSeconds([&]() {
        parsed = workloads::readMatrixMarketPacked(mtx_path, "A",
                                                   {"K", "M"});
    });
    // mmap is microseconds; take the best of several for a stable
    // number (bestSeconds adds one warmup call).
    storage::PackedTensor mapped;
    const double map_s = bench::bestSeconds(
        [&]() { mapped = storage::mapStore(store_path); }, 5);
    const double cold_ratio = parse_s / map_s;

    if (parsed.nnz() != mapped.nnz() ||
        !(parsed.values() == mapped.values())) {
        std::cerr << "STORE MISMATCH: mapped store disagrees with "
                     "parse+pack of the same matrix\n";
        return 1;
    }

    table.addRow({"parse+pack", TextTable::num(parse_s * 1e3, 2), "1x",
                  "-"});
    table.addRow({"mmap", TextTable::num(map_s * 1e3, 3),
                  TextTable::num(cold_ratio, 0) + "x", "-"});
    bench::jsonRow(std::cout, "micro_outofcore",
                   {{"phase", "parse_pack"}},
                   {{"nnz", static_cast<double>(parsed.nnz())}}, 1,
                   parse_s * 1e3);
    bench::jsonRow(std::cout, "micro_outofcore", {{"phase", "mmap"}},
                   {{"cold_start_speedup", cold_ratio}}, 1,
                   map_s * 1e3);

    if (cold_ratio < 50.0) {
        std::cerr << "COLD-START REGRESSION: mmap is only "
                  << cold_ratio << "x faster than parse+pack "
                  << "(contract: >= 50x)\n";
        return 1;
    }

    // ---- 2. spilled vs resident sharded replay ----------------------
    // Diagonal B keeps the compute linear in nnz(A) while the trace —
    // what the spill layer actually bounds — stays large.
    const ft::Tensor diag = workloads::bandedMatrix(
        "B", rows, rows, static_cast<std::size_t>(rows), 98,
        {"K", "N"});
    compiler::Workload w;
    w.add("A", mapped).add("B", diag);
    auto model = compiler::compile(accel::gamma());

    const fs::path spill_dir = dir / "spill";
    fs::create_directories(spill_dir);

    // Spilled first: VmHWM can only grow, so the resident run beating
    // this watermark is exactly the claim under test.
    compiler::RunOptions opts;
    opts.threads = 4;
    opts.cacheState = false;
    opts.spillDir = spill_dir.string();
    opts.spillSegmentBytes = 1u << 20;
    compiler::SimulationResult spilled;
    const double spill_s =
        onceSeconds([&]() { spilled = model.run(w, opts); });
    const std::size_t spill_hwm_kb = peakRssKb();

    opts.spillDir.clear();
    compiler::SimulationResult resident;
    const double resident_s =
        onceSeconds([&]() { resident = model.run(w, opts); });
    const std::size_t resident_hwm_kb = peakRssKb();

    table.addRow({"spilled t4", TextTable::num(spill_s * 1e3, 1), "-",
                  TextTable::num(spill_hwm_kb / 1024.0, 1)});
    table.addRow({"resident t4", TextTable::num(resident_s * 1e3, 1),
                  "-", TextTable::num(resident_hwm_kb / 1024.0, 1)});
    bench::jsonRow(
        std::cout, "micro_outofcore", {{"phase", "spilled"}},
        {{"peak_rss_mb", spill_hwm_kb / 1024.0},
         {"spill_files", static_cast<double>(spilled.spill.files)},
         {"spill_frames", static_cast<double>(spilled.spill.frames)},
         {"spill_mb", spilled.spill.bytes / (1024.0 * 1024.0)}},
        4, spill_s * 1e3);
    bench::jsonRow(std::cout, "micro_outofcore",
                   {{"phase", "resident"}},
                   {{"peak_rss_mb", resident_hwm_kb / 1024.0}}, 4,
                   resident_s * 1e3);

    if (spilled.spill.frames == 0) {
        std::cerr << "SPILL INERT: no frames hit disk — segment "
                     "threshold too high for this trace\n";
        return 1;
    }
    if (spill_hwm_kb != 0 && resident_hwm_kb <= spill_hwm_kb) {
        std::cerr << "RSS BOUND VIOLATION: resident peak ("
                  << resident_hwm_kb << " KiB) did not exceed the "
                  << "spilled run's watermark (" << spill_hwm_kb
                  << " KiB) — spilling is not bounding trace memory\n";
        return 1;
    }

    std::cout << "\n";
    table.print();
    std::cout << "\nmmap cold start: " << TextTable::num(cold_ratio, 0)
              << "x faster than parse+pack; spilled run wrote "
              << spilled.spill.files << " segment file(s), "
              << spilled.spill.frames << " frame(s), peak RSS "
              << TextTable::num(spill_hwm_kb / 1024.0, 1)
              << " MB vs resident "
              << TextTable::num(resident_hwm_kb / 1024.0, 1) << " MB\n";

    fs::remove_all(dir);
    return 0;
}
