/**
 * @file
 * Figure 13a: BFS speedup over Graphicionado for the GraphDynS-like
 * design and the paper's proposal, on the fl/wk/lj graph stand-ins.
 * The headline result: the proposal averages 1.9x over GraphDynS.
 */
#include "common.hpp"
#include "graph/vertex_centric.hpp"

int
main()
{
    using namespace teaal;
    using graph::Algorithm;
    using graph::Design;
    const double scale = bench::graphScale();
    bench::header("Figure 13a: BFS speedup over Graphicionado", scale);

    TextTable table("BFS speedup over Graphicionado");
    table.setHeader({"graph", "GraphDynS-like", "Our Proposal",
                     "proposal/GraphDynS", "iters"});
    std::vector<double> gains;
    for (const std::string& key : {"fl", "wk", "lj"}) {
        const auto& info = workloads::dataset(key);
        const auto g = workloads::synthesizeGraph(info, 31, scale);
        const auto run =
            graph::runVertexCentric(g, Algorithm::BFS, 0);
        const double base = graph::modelDesign(
                                run, Design::Graphicionado,
                                Algorithm::BFS)
                                .seconds;
        const double gd = graph::modelDesign(run, Design::GraphDynSLike,
                                             Algorithm::BFS)
                              .seconds;
        const double pr =
            graph::modelDesign(run, Design::Proposal, Algorithm::BFS)
                .seconds;
        table.addRow({key, TextTable::num(base / gd, 2),
                      TextTable::num(base / pr, 2),
                      TextTable::num(gd / pr, 2),
                      std::to_string(run.iterations.size())});
        gains.push_back(gd / pr);
    }
    table.addSeparator();
    table.addRow({"mean", "-", "-", TextTable::num(arithMean(gains), 2),
                  "(paper reports 1.9x)"});
    table.print();
    return 0;
}
