/**
 * @file
 * Table 5: hardware configurations — printed from the live
 * architecture specifications so this table cannot drift from what
 * the models actually simulate.
 */
#include "accelerators/accelerators.hpp"
#include "util/table.hpp"

namespace
{

void
describe(teaal::TextTable& table, const std::string& name,
         const teaal::compiler::Specification& spec)
{
    using namespace teaal;
    for (const std::string& topo_name :
         spec.architecture.topologyNames()) {
        const arch::Topology& topo =
            spec.architecture.topology(topo_name);
        for (const auto& [comp, instances] : topo.allComponents()) {
            std::string attrs;
            for (const auto& [k, v] : comp->attributes) {
                if (!attrs.empty())
                    attrs += ", ";
                attrs += k + "=" + v;
            }
            table.addRow({name + "/" + topo_name,
                          TextTable::num(topo.clock / 1e9, 2) + " GHz",
                          comp->name + " x" + std::to_string(instances),
                          arch::componentClassName(comp->cls), attrs});
        }
    }
}

} // namespace

int
main()
{
    using namespace teaal;
    TextTable table("Table 5: hardware configurations (live specs)");
    table.setHeader({"design/topology", "clock", "component", "class",
                     "attributes"});
    describe(table, "ExTensor", accel::extensor());
    describe(table, "Gamma", accel::gamma());
    describe(table, "OuterSPACE", accel::outerSpace());
    describe(table, "SIGMA", accel::sigma());
    table.print();
    return 0;
}
