/**
 * @file
 * Table 1: the qualitative comparison of sparse tensor accelerator
 * proposals — the kind of imprecise table the paper argues TeAAL
 * specifications replace, printed next to which of them this
 * repository models executably.
 */
#include "util/table.hpp"

int
main()
{
    using teaal::TextTable;
    TextTable table("Table 1: selected sparse tensor accelerators");
    table.setHeader(
        {"accelerator", "year", "mapping approach", "modeled here"});
    table.addRow({"OuterSPACE", "2018",
                  "outer product, parallel across rows of A",
                  "yes (executable spec)"});
    table.addRow({"ExTensor", "2019",
                  "inner product, tiled across all dims",
                  "yes (executable spec)"});
    table.addRow({"MatRaptor", "2020", "row-wise, parallel summation",
                  "expressible (row-wise like Gamma)"});
    table.addRow({"SIGMA", "2020",
                  "inner product, parallel across dims",
                  "yes (executable spec)"});
    table.addRow({"SpArch", "2020", "outer product, parallel merge",
                  "expressible (OuterSPACE + merge change)"});
    table.addRow({"Tensaurus", "2020", "inner product, SF3",
                  "cascade parses (see table2_cascades)"});
    table.addRow({"Gamma", "2021", "row-wise, Gustavson",
                  "yes (executable spec)"});
    table.print();
    return 0;
}
