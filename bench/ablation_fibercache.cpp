/**
 * @file
 * Ablation C: Gamma's FiberCache capacity. B-row reuse across rows of
 * A is what the 3MB FiberCache captures; shrinking it re-exposes the
 * B re-fetch traffic Gamma was designed to remove.
 */
#include "common.hpp"

int
main()
{
    using namespace teaal;
    const double scale = bench::matrixScale();
    bench::header("Ablation C: Gamma FiberCache capacity sweep "
                  "(email-Enron stand-in: scattered row reuse)",
                  scale);
    const auto in = bench::loadSpmspm("em", scale);

    TextTable table("Gamma with varying FiberCache size");
    table.setHeader({"capacity", "B DRAM traffic (MB)",
                     "total traffic (MB)", "total time (ms)"});
    for (double kb : {32.0, 128.0, 512.0, 3072.0, 16384.0}) {
        accel::GammaConfig cfg;
        cfg.fiberCacheBytes = kb * 1024.0;
        const auto result =
            bench::runAccelerator(accel::gamma(cfg), in);
        const double b_mb = result.traffic.count("B")
                                ? result.traffic.at("B").total() / 1e6
                                : 0;
        table.addRow({TextTable::num(kb, 0) + " KiB",
                      TextTable::num(b_mb, 2),
                      TextTable::num(
                          result.totalTrafficBytes() / 1e6, 2),
                      TextTable::num(result.perf.totalSeconds * 1e3,
                                     3)});
    }
    table.print();
    return 0;
}
