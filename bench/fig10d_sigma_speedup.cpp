/**
 * @file
 * Figure 10d: SIGMA speedup over a TPU-like 128x128 systolic baseline
 * on the figure's GEMM workload dimensions (M/N/K), with A 80% sparse
 * and B 10% sparse (uniform random, as in the paper).
 *
 * SIGMA wins by (1) skipping ineffectual compute on the sparse
 * stationary matrix and (2) its flexible topology keeping PEs busy on
 * skewed shapes that underutilize a rigid systolic array.
 */
#include "common.hpp"

int
main()
{
    using namespace teaal;
    // Each workload scales so its effectual multiply count stays near
    // a fixed budget (mults grow with the cube of the scale); the
    // speedup ratio is computed at matching scale on both sides.
    const double budget =
        bench::envScale("TEAAL_SIGMA_MULTS", 2.0e7);
    std::cout << "# Figure 10d: SIGMA speedup over TPU\n"
              << "# each workload scaled so effectual multiplies ~= "
              << budget
              << " (TEAAL_SIGMA_MULTS); ratios computed at matching "
                 "scale\n\n";

    struct Shape
    {
        ft::Coord m, n, k;
    };
    const std::vector<Shape> shapes{
        {128, 2048, 4096},  {320, 3072, 4096}, {1632, 36548, 1024},
        {2048, 4096, 32},   {35, 8457, 2560},  {31999, 1024, 84},
        {84, 1024, 4096},   {2048, 1, 128},    {256, 256, 2048}};

    TextTable table("SIGMA speedup over TPU (A 80%, B 10% sparse)");
    table.setHeader({"M/N/K", "speedup", "sigma (ms)", "tpu (ms)"});
    for (const Shape& s : shapes) {
        const double full_mults = 0.2 * 0.9 *
                                  static_cast<double>(s.m) *
                                  static_cast<double>(s.n) *
                                  static_cast<double>(s.k);
        const double scale = std::min(
            1.0, std::cbrt(budget / std::max(1.0, full_mults)));
        const auto m = std::max<ft::Coord>(
            1, static_cast<ft::Coord>(s.m * scale));
        const auto n = std::max<ft::Coord>(
            1, static_cast<ft::Coord>(s.n * scale));
        const auto k = std::max<ft::Coord>(
            1, static_cast<ft::Coord>(s.k * scale));
        const auto a_nnz = static_cast<std::size_t>(
            0.2 * static_cast<double>(k) * static_cast<double>(m));
        const auto b_nnz = static_cast<std::size_t>(
            0.9 * static_cast<double>(k) * static_cast<double>(n));
        bench::SpmspmInput in{
            workloads::uniformMatrix("A", k, m,
                                     std::max<std::size_t>(1, a_nnz),
                                     21, {"K", "M"}),
            workloads::uniformMatrix("B", k, n,
                                     std::max<std::size_t>(1, b_nnz),
                                     22, {"K", "N"}),
            {}};
        const auto result = bench::runAccelerator(accel::sigma(), in);
        const double sigma_s = result.perf.totalSeconds;
        const double tpu_s = baselines::tpuGemmSeconds(m, n, k);
        table.addRow(
            {std::to_string(s.m) + "/" + std::to_string(s.n) + "/" +
                 std::to_string(s.k),
             TextTable::num(tpu_s / sigma_s, 2),
             TextTable::num(sigma_s * 1e3, 3),
             TextTable::num(tpu_s * 1e3, 3)});
    }
    table.print();
    std::cout << "\nSIGMA wins where the stationary matrix fills the "
                 "PE array (large M*K tiles)\nand the systolic "
                 "baseline is tile-quantized; scale reduction "
                 "compresses\nboth effects (see EXPERIMENTS.md).\n";
    return 0;
}
