/**
 * @file
 * Table 3: supported hardware component classes and their attributes,
 * as implemented by the architecture specification and the
 * per-component models.
 */
#include "arch/arch.hpp"
#include "util/table.hpp"

int
main()
{
    using teaal::TextTable;
    TextTable table("Table 3: supported components and attributes");
    table.setHeader({"component", "attributes", "model"});
    table.addRow({"DRAM", "bandwidth (GB/s)",
                  "bytes / bandwidth; per-tensor traffic buckets"});
    table.addRow({"Buffer",
                  "type (buffet|cache), width, depth, size, bandwidth",
                  "LRU cache or evict-on buffet; fills/drains -> DRAM"});
    table.addRow({"Intersection",
                  "type (two-finger|leader-follower|skip-ahead), leader",
                  "per-type cycles from steps/matches, per-PE max"});
    table.addRow({"Merger",
                  "inputs, comparator_radix, outputs, order, reduce",
                  "elements x ceil(log_radix(ways)) per swizzle"});
    table.addRow({"Sequencer", "num_ranks",
                  "fiber walk steps / num_ranks, per-PE max"});
    table.addRow({"Compute", "type (mul|add)",
                  "1 op/cycle, per-PE max (load imbalance)"});
    table.print();
    return 0;
}
