/**
 * @file
 * Table 6: the sparse-modeling-framework feature matrix, with this
 * implementation's column verified against the code (each "yes" has a
 * module/test behind it).
 */
#include "util/table.hpp"

int
main()
{
    using teaal::TextTable;
    TextTable table("Table 6: framework features (this implementation)");
    table.setHeader({"feature", "supported", "where"});
    table.addRow({"Models hardware", "yes",
                  "arch/ + model/ (components, bottleneck analysis)"});
    table.addRow({"Generic kernels", "yes",
                  "einsum/ (products, sums, reductions, take)"});
    table.addRow({"Cascaded Einsums", "yes",
                  "einsum/parser (DAG), compiler/ (per-einsum runs)"});
    table.addRow({"Index expressions", "yes",
                  "einsum/ast IndexExpr (affine q+s, constants)"});
    table.addRow({"Shape-based partitioning", "yes",
                  "fibertree/transform splitRankByShape"});
    table.addRow({"Occupancy-based partitioning", "yes",
                  "splitRankByOccupancy + leader-follower slicing"});
    table.addRow({"Generic flattening", "yes",
                  "fibertree/transform flattenRanks (packed coords)"});
    table.addRow({"Rank swizzling", "yes",
                  "ir/builder concordance inference + ft::swizzle"});
    table.addRow({"Format expressivity", "yes",
                  "format/ U/C/B, layouts, bit widths, linked lists"});
    table.addRow({"Caches", "yes", "model/buffer_sim LruCache"});
    table.addRow({"Precise data set", "yes",
                  "executor runs real fibertrees, not distributions"});
    table.addRow({"High model fidelity", "yes",
                  "validated against reported trends (fig9-11 benches)"});
    table.print();
    return 0;
}
