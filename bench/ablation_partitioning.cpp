/**
 * @file
 * Ablation A (paper §3.2.1): partitioning strategy vs. load balance.
 * Shape-based tiles of a skewed matrix have wildly uneven occupancy;
 * per-fiber occupancy partitioning bounds each partition but still
 * truncates at fiber ends; flatten-then-occupancy equalizes globally
 * (Figure 2's flow). Measured as max/mean occupancy over partitions.
 */
#include "common.hpp"
#include "fibertree/transform.hpp"

namespace
{

struct Balance
{
    double mean;
    double max;
};

Balance
occupancyStats(const teaal::ft::Tensor& t)
{
    // Occupancies of all fibers at the top partitioned level.
    std::vector<std::size_t> occ;
    const teaal::ft::Fiber& root = *t.root();
    for (std::size_t i = 0; i < root.size(); ++i) {
        const auto& p = root.payloadAt(i);
        if (p.isFiber() && p.fiber())
            occ.push_back(p.fiber()->leafCount());
    }
    Balance b{0, 0};
    for (std::size_t o : occ) {
        b.mean += static_cast<double>(o);
        b.max = std::max(b.max, static_cast<double>(o));
    }
    if (!occ.empty())
        b.mean /= static_cast<double>(occ.size());
    return b;
}

} // namespace

int
main()
{
    using namespace teaal;
    const double scale = bench::matrixScale();
    bench::header("Ablation A: partitioning strategy vs load balance "
                  "(email-Enron stand-in)",
                  scale);
    const auto a = workloads::synthesize(workloads::dataset("em"), "A",
                                         5, scale);
    const std::size_t nnz = a.nnz();
    const auto chunk = static_cast<std::size_t>(nnz / 256);
    const auto tile = static_cast<ft::Coord>(a.rank(0).shape / 256);

    TextTable table("partition occupancy (256 partitions target)");
    table.setHeader({"strategy", "mean", "max", "max/mean"});

    {
        const auto split = ft::splitRankByShape(a, "K", tile, "K1", "K0");
        const auto b = occupancyStats(split);
        table.addRow({"uniform_shape", TextTable::num(b.mean, 0),
                      TextTable::num(b.max, 0),
                      TextTable::num(b.max / b.mean, 2)});
    }
    {
        const auto split =
            ft::splitRankByOccupancy(a, "K", chunk, "K1", "K0");
        const auto b = occupancyStats(split);
        table.addRow({"uniform_occupancy", TextTable::num(b.mean, 0),
                      TextTable::num(b.max, 0),
                      TextTable::num(b.max / b.mean, 2)});
    }
    {
        const auto flat = ft::flattenRanks(a, "K", "M");
        const auto split =
            ft::splitRankByOccupancy(flat, "KM", chunk, "KM1", "KM0");
        const auto b = occupancyStats(split);
        table.addRow({"flatten + uniform_occupancy",
                      TextTable::num(b.mean, 0), TextTable::num(b.max, 0),
                      TextTable::num(b.max / b.mean, 2)});
    }
    table.print();
    std::cout << "\nFlattening before occupancy partitioning removes "
                 "the per-fiber truncation, driving max/mean to ~1 "
                 "(paper Figure 2, §3.2.1).\n";
    return 0;
}
