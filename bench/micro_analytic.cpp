/**
 * @file
 * Two-speed modeling microbenchmark: what does an analytic estimate
 * cost next to the trace simulation it stands in for, and what does
 * the autotuner save end to end?
 *
 * Part 1 — per-mapping cost on the four Table 1 accelerators
 * (Gamma, OuterSPACE, ExTensor, SIGMA): time CompiledModel::estimate
 * (cache defeated via Workload::touch, so every sample recomputes the
 * closed forms) against a single-shot trace run of the same model and
 * workload. The headline invariant: the analytic tier is >= 50x
 * faster per mapping.
 *
 * Part 2 — the autotuner end to end on the explorer's 36-candidate
 * SpMSpM design space: analytic prune + top-K trace vs exhaustive
 * trace search, asserting both find the same best mapping.
 *
 * Emits bench::jsonRow lines for the CI perf artifact and the
 * ci/perf_diff.py >15% regression gate.
 */
#include <chrono>
#include <iostream>

#include "common.hpp"
#include "tuner/tuner.hpp"

namespace
{

using teaal::accel::ExTensorConfig;
using teaal::compiler::Specification;

Specification
specOf(const std::string& name)
{
    if (name == "gamma")
        return teaal::accel::gamma();
    if (name == "outerspace")
        return teaal::accel::outerSpace();
    if (name == "sigma")
        return teaal::accel::sigma();
    // ExTensor: tile the bench-sized operands meaningfully (defaults
    // are sized for full-scale matrices).
    ExTensorConfig cfg;
    cfg.tileK1 = 512;
    cfg.tileK0 = 64;
    cfg.tileM1 = 512;
    cfg.tileM0 = 64;
    cfg.tileN1 = 512;
    cfg.tileN0 = 64;
    return teaal::accel::extensor(cfg);
}

double
wallSeconds(const std::chrono::steady_clock::time_point& t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main()
{
    using namespace teaal;
    bench::header("micro_analytic: analytic estimate vs trace "
                  "simulation, and the two-speed autotuner",
                  1.0);

    const auto a =
        workloads::uniformMatrix("A", 600, 500, 4000, 21, {"K", "M"});
    const auto b =
        workloads::uniformMatrix("B", 600, 550, 4000, 22, {"K", "N"});

    TextTable table("per-mapping cost (best of 5)");
    table.setHeader({"accelerator", "estimate (us)", "trace (ms)",
                     "trace/estimate"});
    bool fastEnough = true;
    for (const std::string name :
         {"gamma", "outerspace", "extensor", "sigma"}) {
        auto model = compiler::compile(specOf(name));
        compiler::Workload w;
        w.add("A", a).add("B", b);

        // touch() refreshes the fingerprint, so every sample misses
        // the estimate LRU and pays the full closed-form walk.
        const double est_s = bench::bestSeconds(
            [&]() {
                w.touch();
                (void)model.estimate(w);
            },
            5);
        const double trace_s = bench::bestSeconds(
            [&]() { (void)model.run(w, bench::singleShot()); }, 5);
        const double ratio = trace_s / est_s;
        fastEnough = fastEnough && ratio >= 50.0;

        table.addRow({name, TextTable::num(est_s * 1e6, 1),
                      TextTable::num(trace_s * 1e3, 3),
                      TextTable::num(ratio, 0) + "x"});
        // wall_ms carries the trace time: the estimate is far below
        // the differ's noise floor (MIN_WALL_MS), and a trace-tier
        // regression is exactly what the >15% gate should catch.
        bench::jsonRow(std::cout, "micro_analytic",
                       {{"accel", name}},
                       {{"estimate_us", est_s * 1e6},
                        {"trace_ms", trace_s * 1e3},
                        {"trace_vs_estimate", ratio}},
                       /*threads=*/1, /*wall_ms=*/trace_s * 1e3);
    }
    table.print();
    std::cout << "\nanalytic >= 50x faster per mapping: "
              << (fastEnough ? "HOLDS" : "VIOLATED") << "\n\n";

    // ---------------------------------------- autotuner end to end
    const auto ta =
        workloads::powerLawMatrix("A", 900, 800, 14000, 5, {"K", "M"});
    const auto tb =
        workloads::powerLawMatrix("B", 900, 850, 14000, 6, {"K", "N"});
    compiler::Workload tw;
    tw.add("A", ta).add("B", tb);
    const auto cands = tuner::spmspmSearchSpace();

    tuner::TunerOptions pruned;
    pruned.topK = 4;
    pruned.threads = 4;
    auto t0 = std::chrono::steady_clock::now();
    const auto fast = tuner::tune(cands, tw, pruned);
    const double pruned_s = wallSeconds(t0);

    tuner::TunerOptions full;
    full.topK = cands.size();
    full.threads = 4;
    t0 = std::chrono::steady_clock::now();
    const auto exact = tuner::tune(cands, tw, full);
    const double full_s = wallSeconds(t0);

    const bool agree = fast.bestIndex == exact.bestIndex;
    std::cout << "autotuner on " << cands.size()
              << " candidates: pruned "
              << TextTable::num(pruned_s * 1e3, 0) << " ms ("
              << fast.tracedCount << " traced) vs exhaustive "
              << TextTable::num(full_s * 1e3, 0) << " ms — "
              << TextTable::num(full_s / pruned_s, 1)
              << "x, same best mapping: " << (agree ? "yes" : "NO")
              << " (" << fast.best().label << ")\n";
    bench::jsonRow(std::cout, "micro_analytic",
                   {{"accel", "autotuner_spmspm36"}},
                   {{"pruned_ms", pruned_s * 1e3},
                    {"exhaustive_ms", full_s * 1e3},
                    {"exhaustive_vs_pruned", full_s / pruned_s},
                    {"agreement", agree ? 1.0 : 0.0}},
                   /*threads=*/4, /*wall_ms=*/pruned_s * 1e3);

    return fastEnough && agree ? 0 : 1;
}
