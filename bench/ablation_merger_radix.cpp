/**
 * @file
 * Ablation B: Gamma's merger comparator radix. A binary merger needs
 * log2(ways) passes over every merged element; the 64-way merger does
 * it in one — the design choice that makes the fused swizzle cheap.
 */
#include "common.hpp"

int
main()
{
    using namespace teaal;
    const double scale = bench::matrixScale();
    bench::header("Ablation B: Gamma merger radix sweep (poisson3Da "
                  "stand-in)",
                  scale);
    const auto in = bench::loadSpmspm("po", scale);

    TextTable table("Gamma with varying comparator radix");
    table.setHeader({"radix", "merge element-passes (M)",
                     "merger time (ms)", "total time (ms)"});
    for (int radix : {2, 4, 8, 16, 64}) {
        accel::GammaConfig cfg;
        cfg.mergerWays = radix;
        const auto result =
            bench::runAccelerator(accel::gamma(cfg), in);
        double merge_elems = 0;
        double merger_seconds = 0;
        for (std::size_t i = 0; i < result.records.size(); ++i) {
            const auto it =
                result.records[i].components.find("TopMerger");
            if (it != result.records[i].components.end())
                merge_elems += it->second.count("merge_elems");
            const auto ts =
                result.perf.einsums[i].componentSeconds.find(
                    "TopMerger");
            if (ts != result.perf.einsums[i].componentSeconds.end())
                merger_seconds += ts->second;
        }
        table.addRow({std::to_string(radix),
                      TextTable::num(merge_elems / 1e6, 2),
                      TextTable::num(merger_seconds * 1e3, 3),
                      TextTable::num(result.perf.totalSeconds * 1e3,
                                     3)});
    }
    table.print();
    return 0;
}
