/**
 * @file
 * Model-split microbench: model-inclusive wall time of
 * CompiledModel::run per thread count, comparing the two routes the
 * performance model can take under sharded execution:
 *
 *   mode=replay  the pre-split configuration — workers capture the
 *                full trace and the coordinator replays every record
 *                through the serial observer (forced here by
 *                attaching a no-op extra observer, which requires the
 *                full stream; this is also what any run with extra
 *                trace observers gets).
 *   mode=accum   the split configuration — per-shard accumulators
 *                consume the order-independent datapath records
 *                inside the shards; the coordinator replays only the
 *                order-dependent storage records.
 *
 * At threads=1 both modes run the identical serial façade, so their
 * gap is pure noise; at threads>=2 the accum mode's speedup over
 * replay is the model work moved off the coordinator. Records are
 * byte-identical across modes and thread counts (asserted per row —
 * a violation aborts the bench).
 *
 * Emits bench::jsonRow lines keyed by (accel, dataset, mode) with
 * `wall_ms` for the CI perf differ.
 */
#include <cstdlib>
#include <iostream>

#include "common.hpp"

namespace
{

using namespace teaal;

/** Inert observer: attaching it forces the full-capture fallback. */
class NoopObserver : public trace::Observer
{
  public:
    void onEventBatch(const trace::EventBatch& batch) override
    {
        (void)batch;
    }
};

bool
sameTraffic(const compiler::SimulationResult& a,
            const compiler::SimulationResult& b)
{
    for (const auto& [tensor, tt] : a.traffic) {
        const auto it = b.traffic.find(tensor);
        if (it == b.traffic.end() ||
            it->second.readBytes != tt.readBytes ||
            it->second.writeBytes != tt.writeBytes ||
            it->second.poBytes != tt.poBytes)
            return false;
    }
    return a.records.size() == b.records.size();
}

void
runOne(const std::string& accel_name, compiler::Specification spec,
       const std::string& dataset, const bench::SpmspmInput& in,
       TextTable& table)
{
    auto model = compiler::compile(std::move(spec));
    const compiler::Workload w = bench::workloadOf(in);

    // Reference for the per-row equivalence check.
    const compiler::SimulationResult ref = model.run(w);

    NoopObserver noop;
    double replay_t1_ms = 0;
    for (const unsigned threads : {1u, 2u, 4u}) {
        double mode_ms[2] = {0, 0};
        for (const int accum : {0, 1}) {
            compiler::RunOptions opts;
            opts.threads = threads;
            if (accum == 0)
                opts.observers.push_back(&noop);
            const double secs = bench::bestSeconds(
                [&]() { (void)model.run(w, opts); }, 3);
            const double wall_ms = secs * 1e3;
            mode_ms[accum] = wall_ms;
            if (accum == 0 && threads == 1)
                replay_t1_ms = wall_ms;

            const compiler::SimulationResult got = model.run(w, opts);
            if (!sameTraffic(ref, got)) {
                std::cerr << "MODEL EQUIVALENCE VIOLATION: "
                          << accel_name << "/" << dataset
                          << " threads=" << threads
                          << " mode=" << (accum ? "accum" : "replay")
                          << "\n";
                std::exit(1);
            }

            bench::jsonRow(std::cout, "micro_model",
                           {{"accel", accel_name},
                            {"dataset", dataset},
                            {"mode", accum ? "accum" : "replay"}},
                           {{"speedup_vs_replay_t1",
                             replay_t1_ms / wall_ms}},
                           threads, wall_ms);
        }
        table.addRow({accel_name, dataset, std::to_string(threads),
                      TextTable::num(mode_ms[0], 2),
                      TextTable::num(mode_ms[1], 2),
                      TextTable::num(mode_ms[0] / mode_ms[1], 2) + "x"});
    }
    table.addSeparator();
}

} // namespace

int
main()
{
    const double scale = bench::matrixScale();
    bench::header("model split: serial-observer replay vs "
                  "shard-accumulated model, wall time per thread "
                  "count",
                  scale);

    TextTable table("CompiledModel::run, model-inclusive (best of 3; "
                    "byte-identical records asserted per row)");
    table.setHeader({"accel", "dataset", "threads", "replay ms",
                     "accum ms", "accum speedup"});

    for (const std::string& key :
         {std::string("p2"), std::string("wi")}) {
        const bench::SpmspmInput in = bench::loadSpmspm(key, scale);
        runOne("gamma", accel::gamma({}), key, in, table);
        runOne("extensor", accel::extensor({}), key, in, table);
    }

    table.print();
    std::cout << "\nnote: mode=replay funnels every trace record "
                 "through the coordinator's serial observer (the "
                 "pre-split Amdahl floor); mode=accum consumes the "
                 "order-independent datapath records inside the "
                 "shards and replays only the storage-model records "
                 "in order. Records are byte-identical either way.\n";
    return 0;
}
