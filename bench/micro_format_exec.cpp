/**
 * @file
 * Format-aware execution microbenchmark: the same Gamma-dataflow
 * SpMSpM (row-wise Gustavson loop order M, K, N) executed over
 * pointer fibertrees vs packed rank stores (storage/packed.hpp).
 *
 * Both backends run the identical plan, strategies, and trace stream;
 * the packed walk reads flat coordinate/segment arrays instead of
 * chasing per-fiber allocations, so its advantage is pure memory
 * locality. The headline row reports the packed:pointer wall-time
 * ratio; the bench also verifies the two backends' outputs are equal
 * and that the packed bind performs zero Tensor::clone() calls.
 *
 * Emits the human table plus bench::jsonRow machine-readable lines
 * (keyed by backend + threads) for ci/perf_diff.py.
 */
#include <iostream>

#include "common.hpp"
#include "exec/executor.hpp"
#include "ir/plan.hpp"
#include "storage/packed.hpp"

namespace
{

using namespace teaal;

/** Batch-aware no-op sink: absorbs whole batches so the bench times
 *  the walk, not per-event virtual dispatch. */
class NullSink : public trace::Observer
{
  public:
    void
    onEventBatch(const trace::EventBatch& batch) override
    {
        (void)batch;
    }
};

double
timeRun(const ir::EinsumPlan& plan, unsigned threads, int iters)
{
    exec::ExecOptions opts;
    opts.threads = threads;
    return bench::bestSeconds(
        [&]() {
            NullSink sink;
            exec::Executor ex(plan, sink, exec::Semiring::arithmetic(),
                              opts);
            ex.run();
        },
        iters);
}

} // namespace

int
main()
{
    using namespace teaal;

    std::cout
        << "# micro_format_exec: packed rank stores vs pointer "
           "fibertrees\n"
        << "# Gamma-dataflow SpMSpM (loop order M, K, N), identical "
           "plans and trace streams on both backends\n\n";

    // Row-major Gustavson: A [M, K] drives rows, B [K, N] is fetched
    // row by row. A hyper-sparse B (256k rows of ~4 nonzeros, tree
    // larger than the LLC) makes the per-row descend the hot path:
    // the pointer tree dereferences one heap allocation per fetched
    // row, the packed store reads two contiguous segment entries —
    // the shape real Gustavson SpMSpM has on SuiteSparse matrices.
    const ft::Coord m = 1 << 13;
    const ft::Coord k = 1 << 18;
    const ft::Coord n = 256;
    const std::size_t nnz_a = 1000000;
    const std::size_t nnz_b = 1000000;
    const ft::Tensor a =
        workloads::uniformMatrix("A", m, k, nnz_a, 31, {"M", "K"});
    const ft::Tensor b =
        workloads::uniformMatrix("B", k, n, nnz_b, 33, {"K", "N"});
    std::cout << "# A " << m << "x" << k << " nnz " << a.nnz() << ", B "
              << k << "x" << n << " nnz " << b.nnz() << "\n\n";

    const char* yaml_text = "einsum:\n"
                            "  declaration:\n"
                            "    A: [M, K]\n"
                            "    B: [K, N]\n"
                            "    Z: [M, N]\n"
                            "  expressions:\n"
                            "    - Z[m, n] = A[k, m] * B[k, n]\n"
                            "mapping:\n"
                            "  rank-order:\n"
                            "    A: [M, K]\n"
                            "    B: [K, N]\n"
                            "    Z: [M, N]\n"
                            "  loop-order:\n"
                            "    Z: [M, K, N]\n"
                            "  spacetime:\n"
                            "    Z:\n"
                            "      space: [M]\n"
                            "      time: [K, N]\n";
    auto model =
        compiler::compile(compiler::Specification::parse(yaml_text));

    // Pointer-backed plan.
    compiler::Workload pointer_w;
    pointer_w.add("A", a).add("B", b);
    const ir::EinsumPlan& pointer_plan = model.plans(pointer_w)[0];

    // Packed-backed plan: CSR-style formats, bound clone-free.
    fmt::TensorFormat csr;
    fmt::RankFormat u;
    u.type = fmt::RankFormat::Type::U;
    fmt::RankFormat c;
    c.type = fmt::RankFormat::Type::C;
    csr.ranks["M"] = u;
    csr.ranks["K"] = c;
    const auto packed_a = storage::PackedTensor::fromTensor(a, csr);
    fmt::TensorFormat csr_b;
    csr_b.ranks["K"] = u;
    csr_b.ranks["N"] = c;
    const auto packed_b = storage::PackedTensor::fromTensor(b, csr_b);
    compiler::Workload packed_w;
    packed_w.add("A", packed_a).add("B", packed_b);
    const std::uint64_t clones_before = ft::Tensor::cloneCount();
    const ir::EinsumPlan& packed_plan = model.plans(packed_w)[0];
    const std::uint64_t bind_clones =
        ft::Tensor::cloneCount() - clones_before;

    // Functional sanity: both backends produce the same output.
    {
        NullSink sink;
        exec::Executor pex(pointer_plan, sink,
                           exec::Semiring::arithmetic(), {});
        exec::Executor kex(packed_plan, sink,
                           exec::Semiring::arithmetic(), {});
        const ft::Tensor zp = pex.run();
        const ft::Tensor zk = kex.run();
        if (!zp.equals(zk)) {
            std::cerr << "FATAL: packed output diverged from pointer\n";
            return 1;
        }
    }

    TextTable table("Gamma SpMSpM walk: pointer fibertree vs packed");
    table.setHeader(
        {"backend", "threads", "ms/run", "vs pointer"});
    double pointer_ms_t1 = 0;
    for (const unsigned threads : {1u, 4u}) {
        const int iters = 3;
        const double pointer_s = timeRun(pointer_plan, threads, iters);
        const double packed_s = timeRun(packed_plan, threads, iters);
        if (threads == 1)
            pointer_ms_t1 = pointer_s * 1e3;
        const double ratio = pointer_s / packed_s;
        table.addRow({"pointer", std::to_string(threads),
                      TextTable::num(pointer_s * 1e3, 2), "1.00x"});
        table.addRow({"packed", std::to_string(threads),
                      TextTable::num(packed_s * 1e3, 2),
                      TextTable::num(ratio, 2) + "x"});
        bench::jsonRow(std::cout, "micro_format_exec",
                       {{"backend", "pointer"}}, {},
                       threads, pointer_s * 1e3);
        bench::jsonRow(std::cout, "micro_format_exec",
                       {{"backend", "packed"}},
                       {{"speedup_vs_pointer", ratio}}, threads,
                       packed_s * 1e3);
    }

    std::cout << "\n" << table.render() << "\n";
    std::cout << "packed bind Tensor::clone() calls: " << bind_clones
              << " (must be 0)\n";
    std::cout << "pointer t1 baseline: "
              << TextTable::num(pointer_ms_t1, 2) << " ms\n";
    return bind_clones == 0 ? 0 : 1;
}
