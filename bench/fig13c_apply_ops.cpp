/**
 * @file
 * Figure 13c: apply operations (MOPs) per BFS iteration on the
 * soc-LiveJournal1 stand-in, for all three designs. Graphicionado is
 * flat at 2*|V| per iteration; GraphDynS dips when few bitmap
 * partitions contain updates; the proposal tracks the actual update
 * set — smaller than GraphDynS even at the frontier's peak.
 */
#include "common.hpp"
#include "graph/vertex_centric.hpp"

int
main()
{
    using namespace teaal;
    using graph::Algorithm;
    using graph::Design;
    const double scale = bench::graphScale();
    bench::header("Figure 13c: apply MOPs per BFS iteration (lj)",
                  scale);

    const auto& info = workloads::dataset("lj");
    const auto g = workloads::synthesizeGraph(info, 31, scale);
    const auto run = graph::runVertexCentric(g, Algorithm::BFS, 0);

    const auto gi = graph::modelDesign(run, Design::Graphicionado,
                                       Algorithm::BFS);
    const auto gd = graph::modelDesign(run, Design::GraphDynSLike,
                                       Algorithm::BFS);
    const auto pr =
        graph::modelDesign(run, Design::Proposal, Algorithm::BFS);

    TextTable table("apply operations per iteration (MOPs)");
    table.setHeader({"iteration", "Graphicionado", "GraphDynS-like",
                     "Our Proposal"});
    for (std::size_t i = 0; i < run.iterations.size(); ++i) {
        table.addRow(
            {std::to_string(i),
             TextTable::num(gi.applyOpsPerIteration[i] / 1e6, 3),
             TextTable::num(gd.applyOpsPerIteration[i] / 1e6, 3),
             TextTable::num(pr.applyOpsPerIteration[i] / 1e6, 3)});
    }
    table.addSeparator();
    table.addRow({"total", TextTable::num(gi.applyOps / 1e6, 2),
                  TextTable::num(gd.applyOps / 1e6, 2),
                  TextTable::num(pr.applyOps / 1e6, 2)});
    table.print();
    return 0;
}
