/**
 * @file
 * Figure 10a: ExTensor speedup over an MKL-class CPU baseline —
 * Reported vs TeAAL (data-driven) vs the Sparseloop-like analytical
 * model (uniform hypergeometric sparsity). The analytical model's
 * larger error on skewed real data reproduces the paper's
 * methodological contrast (TeAAL 9.0% vs Sparseloop 187% in §7).
 */
#include "common.hpp"

int
main()
{
    using namespace teaal;
    const double scale = bench::matrixScale();
    bench::header("Figure 10a: ExTensor speedup over MKL "
                  "(Reported vs TeAAL vs Sparseloop-like)",
                  scale);

    TextTable table("ExTensor speedup over MKL");
    table.setHeader({"matrix", "reported(approx)", "teaal",
                     "sparseloop-like"});
    std::vector<double> teaal_v, sloop_v, reported_v;
    for (const std::string& key : bench::validationKeys()) {
        const auto in = bench::loadSpmspm(key, scale);
        const double mkl = baselines::cpuSpmspmSeconds(in.work);

        const auto result =
            bench::runAccelerator(accel::extensor(), in);
        const double ours = mkl / result.perf.totalSeconds;

        // Analytical estimate from summary statistics only.
        const double da =
            static_cast<double>(in.a.nnz()) /
            (static_cast<double>(in.a.rank(0).shape) *
             static_cast<double>(in.a.rank(1).shape));
        const double db =
            static_cast<double>(in.b.nnz()) /
            (static_cast<double>(in.b.rank(0).shape) *
             static_cast<double>(in.b.rank(1).shape));
        const auto analytical = baselines::sparseloopExtensor(
            {}, in.a.rank(0).shape, in.a.rank(1).shape,
            in.b.rank(1).shape, da, db);
        const double sloop = mkl / analytical.seconds;

        table.addRow({key,
                      TextTable::num(
                          bench::reportedExtensorSpeedup().at(key), 1),
                      TextTable::num(ours, 1),
                      TextTable::num(sloop, 1)});
        teaal_v.push_back(ours);
        sloop_v.push_back(sloop);
        reported_v.push_back(
            bench::reportedExtensorSpeedup().at(key));
    }
    table.addSeparator();
    table.addRow({"mean-abs-err%", "-",
                  TextTable::num(
                      meanAbsRelErrorPct(teaal_v, reported_v), 1),
                  TextTable::num(
                      meanAbsRelErrorPct(sloop_v, reported_v), 1)});
    table.print();
    std::cout << "\nThe data-driven model tracks the reported trend; "
                 "the uniform-sparsity analytical model misses the "
                 "skew of real tensors (paper §7, Fig. 10a).\n";
    return 0;
}
