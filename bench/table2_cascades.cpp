/**
 * @file
 * Table 2: the Einsum cascades for the paper's accelerators and
 * algorithms — each parsed through the real einsum front end and
 * re-rendered, proving the language covers every row.
 */
#include <iostream>

#include "einsum/parser.hpp"
#include "graph/vertex_centric.hpp"
#include "util/table.hpp"
#include "yaml/yaml.hpp"

namespace
{

struct Entry
{
    const char* name;
    const char* yaml;
};

const Entry kCascades[] = {
    {"ExTensor SpMSpM", "declaration:\n"
                        "  A: [K, M]\n  B: [K, N]\n  Z: [M, N]\n"
                        "expressions:\n"
                        "  - Z[m,n] = A[k,m] * B[k,n]\n"},
    {"Gamma SpMSpM", "declaration:\n"
                     "  A: [K, M]\n  B: [K, N]\n  T: [K, M, N]\n"
                     "  Z: [M, N]\n"
                     "expressions:\n"
                     "  - T[k,m,n] = take(A[k,m], B[k,n], 1)\n"
                     "  - Z[m,n] = T[k,m,n] * A[k,m]\n"},
    {"OuterSPACE SpMSpM", "declaration:\n"
                          "  A: [K, M]\n  B: [K, N]\n"
                          "  T: [K, M, N]\n  Z: [M, N]\n"
                          "expressions:\n"
                          "  - T[k,m,n] = A[k,m] * B[k,n]\n"
                          "  - Z[m,n] = T[k,m,n]\n"},
    {"SIGMA SpMSpM", "declaration:\n"
                     "  A: [K, M]\n  B: [K, N]\n  S: [K, M]\n"
                     "  T: [K, M]\n  Z: [M, N]\n"
                     "expressions:\n"
                     "  - S[k,m] = take(A[k,m], B[k,n], 0)\n"
                     "  - T[k,m] = take(A[k,m], S[k,m], 0)\n"
                     "  - Z[m,n] = T[k,m] * B[k,n]\n"},
    {"Eyeriss CONV", "declaration:\n"
                     "  I: [B, C, H, W]\n  F: [C, M, R, S]\n"
                     "  O: [B, M, P, Q]\n"
                     "expressions:\n"
                     "  - O[b,m,p,q] = I[b,c,p+r,q+s] * F[c,m,r,s]\n"},
    {"Toeplitz + CONV", "declaration:\n"
                        "  I: [B, C, H, W]\n  F: [C, M, R, S]\n"
                        "  T: [B, C, P, Q, R, S]\n  O: [B, M, P, Q]\n"
                        "expressions:\n"
                        "  - T[b,c,p,q,r,s] = I[b,c,p+r,q+s]\n"
                        "  - O[b,m,p,q] = T[b,c,p,q,r,s] * F[c,m,r,s]\n"},
    {"Tensaurus MTTKRP", "declaration:\n"
                         "  T: [I, J, K]\n  A: [K, R]\n  B: [J, R]\n"
                         "  C: [I, R]\n"
                         "expressions:\n"
                         "  - C[i,r] = T[i,j,k] * B[j,r] * A[k,r]\n"},
    {"Factorized MTTKRP", "declaration:\n"
                          "  T: [I, J, K]\n  A: [K, R]\n  B: [J, R]\n"
                          "  S: [I, J, R]\n  C: [I, R]\n"
                          "expressions:\n"
                          "  - S[i,j,r] = T[i,j,k] * A[k,r]\n"
                          "  - C[i,r] = S[i,j,r] * B[j,r]\n"},
    {"Cooley-Tukey FFT step",
     "declaration:\n"
     "  P: [Z, K0, N1, W]\n  X: [N1, Z]\n  E0: [K0]\n  O0: [K0]\n"
     "  T: [K0]\n  Y0: [K0]\n  Y1: [K0]\n"
     "expressions:\n"
     "  - E0[k0] = P[0, k0, n1, 0] * X[n1, 0]\n"
     "  - O0[k0] = P[0, k0, n1, 0] * X[n1, 1]\n"
     "  - T[k0] = P[0, k0, 0, 1] * O0[k0]\n"
     "  - Y0[k0] = E0[k0] + T[k0]\n"
     "  - Y1[k0] = E0[k0] - T[k0]\n"},
};

} // namespace

int
main()
{
    using namespace teaal;
    TextTable table(
        "Table 2: Einsum cascades (parsed by the einsum front end)");
    table.setHeader({"accelerator / algorithm", "cascade"});
    for (const Entry& e : kCascades) {
        const auto spec =
            einsum::EinsumSpec::parse(yaml::parse(e.yaml));
        std::string joined;
        for (const auto& expr : spec.expressions) {
            if (!joined.empty())
                joined += " ; ";
            joined += expr.toString();
        }
        table.addRow({e.name, joined});
    }
    // The Figure 12 graph cascades parse through the same front end.
    for (const auto& [name, yaml_text] :
         {std::pair<const char*, std::string>{
              "Graphicionado (Fig 12a)",
              graph::graphicionadoCascadeYaml()},
          {"GraphDynS (Fig 12b)", graph::graphDynSCascadeYaml()}}) {
        const auto spec =
            einsum::EinsumSpec::parse(yaml::parse(yaml_text));
        table.addRow({name, std::to_string(spec.expressions.size()) +
                                " einsums (see fig13 benches)"});
    }
    table.print();
    return 0;
}
