/**
 * @file
 * Microbenchmarks (google-benchmark) of the fibertree substrate: the
 * operations every simulation is built from, plus the executor's
 * batched trace bus (virtual calls per logical trace event).
 */
#include <benchmark/benchmark.h>

#include <map>

#include "compiler/pipeline.hpp"
#include "exec/executor.hpp"
#include "fibertree/coiter.hpp"
#include "fibertree/transform.hpp"
#include "ir/plan.hpp"
#include "trace/batch.hpp"
#include "util/random.hpp"
#include "workloads/datasets.hpp"

namespace
{

using namespace teaal;

ft::Tensor
matrix(std::size_t nnz)
{
    return workloads::uniformMatrix("A", 4096, 4096, nnz, 42);
}

void
BM_FiberAppend(benchmark::State& state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        ft::Fiber f(static_cast<ft::Coord>(n));
        for (std::size_t i = 0; i < n; ++i)
            f.append(static_cast<ft::Coord>(i), ft::Payload(1.0));
        benchmark::DoNotOptimize(f.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FiberAppend)->Arg(1024)->Arg(65536);

void
BM_FiberLookup(benchmark::State& state)
{
    ft::Fiber f(1 << 20);
    for (ft::Coord c = 0; c < (1 << 16); ++c)
        f.append(c * 16, ft::Payload(1.0));
    Xoshiro256 rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            f.find(static_cast<ft::Coord>(rng.below(1 << 20))));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FiberLookup);

void
BM_Intersect2(benchmark::State& state)
{
    ft::Fiber a(1 << 20), b(1 << 20);
    Xoshiro256 rng(9);
    ft::Coord ca = 0, cb = 0;
    for (int i = 0; i < (1 << 15); ++i) {
        ca += 1 + static_cast<ft::Coord>(rng.below(30));
        cb += 1 + static_cast<ft::Coord>(rng.below(30));
        a.append(ca, ft::Payload(1.0));
        b.append(cb, ft::Payload(1.0));
    }
    for (auto _ : state) {
        std::size_t matches = 0;
        ft::intersect2(ft::FiberView::whole(&a),
                       ft::FiberView::whole(&b),
                       [&](ft::Coord, std::size_t, std::size_t) {
                           ++matches;
                       });
        benchmark::DoNotOptimize(matches);
    }
    state.SetItemsProcessed(state.iterations() * (2 << 15));
}
BENCHMARK(BM_Intersect2);

void
BM_Swizzle(benchmark::State& state)
{
    const auto t = matrix(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        auto s = ft::swizzle(t, {"M", "K"});
        benchmark::DoNotOptimize(s.nnz());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Swizzle)->Arg(10000)->Arg(100000);

void
BM_PartitionOccupancy(benchmark::State& state)
{
    const auto t = matrix(100000);
    const auto flat = ft::flattenRanks(t, "K", "M");
    for (auto _ : state) {
        auto s = ft::splitRankByOccupancy(flat, "KM", 256, "KM1",
                                          "KM0");
        benchmark::DoNotOptimize(s.nnz());
    }
    state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_PartitionOccupancy);

void
BM_PartitionShape(benchmark::State& state)
{
    const auto t = matrix(100000);
    for (auto _ : state) {
        auto s = ft::splitRankByShape(t, "K", 256, "K1", "K0");
        benchmark::DoNotOptimize(s.nnz());
    }
    state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_PartitionShape);

// ------------------------------------------------- batched trace bus

/** Observer whose batch hook counts virtual calls across the
 *  interface without consuming anything. */
class NullBatchObserver : public trace::Observer
{
  public:
    std::size_t batchCalls = 0;
    std::size_t records = 0;

    void
    onEventBatch(const trace::EventBatch& batch) override
    {
        ++batchCalls;
        records += batch.events.size();
    }
};

/**
 * Executor over a mid-size SpMSpM, measuring the trace bus: the
 * `events_per_call` counter is the observer virtual-call reduction
 * versus the historical one-virtual-call-per-event engine (>= 10x is
 * the bar this refactor is held to).
 */
void
BM_ExecutorTraceBus(benchmark::State& state)
{
    const char* yaml_text = "einsum:\n"
                            "  declaration:\n"
                            "    A: [K, M]\n"
                            "    B: [K, N]\n"
                            "    Z: [M, N]\n"
                            "  expressions:\n"
                            "    - Z[m, n] = A[k, m] * B[k, n]\n";
    const ft::Tensor a = workloads::uniformMatrix("A", 512, 256, 30000,
                                                  31, {"K", "M"});
    const ft::Tensor b = workloads::uniformMatrix("B", 512, 256, 30000,
                                                  37, {"K", "N"});
    auto model =
        compiler::compile(compiler::Specification::parse(yaml_text));
    compiler::Workload w;
    w.add("A", a).add("B", b);
    const ir::EinsumPlan& plan = model.plans(w)[0];

    std::size_t events = 0;
    std::size_t calls = 0;
    for (auto _ : state) {
        NullBatchObserver obs;
        exec::Executor ex(plan, obs);
        benchmark::DoNotOptimize(ex.run());
        events = obs.records;
        calls = obs.batchCalls;
    }
    state.counters["trace_events"] =
        benchmark::Counter(static_cast<double>(events));
    state.counters["observer_calls"] =
        benchmark::Counter(static_cast<double>(calls));
    state.counters["events_per_call"] = benchmark::Counter(
        calls == 0 ? 0.0
                   : static_cast<double>(events) /
                         static_cast<double>(calls));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(events));
}
BENCHMARK(BM_ExecutorTraceBus);

} // namespace

BENCHMARK_MAIN();
