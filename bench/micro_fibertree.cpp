/**
 * @file
 * Microbenchmarks (google-benchmark) of the fibertree substrate: the
 * operations every simulation is built from.
 */
#include <benchmark/benchmark.h>

#include "fibertree/coiter.hpp"
#include "fibertree/transform.hpp"
#include "util/random.hpp"
#include "workloads/datasets.hpp"

namespace
{

using namespace teaal;

ft::Tensor
matrix(std::size_t nnz)
{
    return workloads::uniformMatrix("A", 4096, 4096, nnz, 42);
}

void
BM_FiberAppend(benchmark::State& state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        ft::Fiber f(static_cast<ft::Coord>(n));
        for (std::size_t i = 0; i < n; ++i)
            f.append(static_cast<ft::Coord>(i), ft::Payload(1.0));
        benchmark::DoNotOptimize(f.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FiberAppend)->Arg(1024)->Arg(65536);

void
BM_FiberLookup(benchmark::State& state)
{
    ft::Fiber f(1 << 20);
    for (ft::Coord c = 0; c < (1 << 16); ++c)
        f.append(c * 16, ft::Payload(1.0));
    Xoshiro256 rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            f.find(static_cast<ft::Coord>(rng.below(1 << 20))));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FiberLookup);

void
BM_Intersect2(benchmark::State& state)
{
    ft::Fiber a(1 << 20), b(1 << 20);
    Xoshiro256 rng(9);
    ft::Coord ca = 0, cb = 0;
    for (int i = 0; i < (1 << 15); ++i) {
        ca += 1 + static_cast<ft::Coord>(rng.below(30));
        cb += 1 + static_cast<ft::Coord>(rng.below(30));
        a.append(ca, ft::Payload(1.0));
        b.append(cb, ft::Payload(1.0));
    }
    for (auto _ : state) {
        std::size_t matches = 0;
        ft::intersect2(ft::FiberView::whole(&a),
                       ft::FiberView::whole(&b),
                       [&](ft::Coord, std::size_t, std::size_t) {
                           ++matches;
                       });
        benchmark::DoNotOptimize(matches);
    }
    state.SetItemsProcessed(state.iterations() * (2 << 15));
}
BENCHMARK(BM_Intersect2);

void
BM_Swizzle(benchmark::State& state)
{
    const auto t = matrix(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        auto s = ft::swizzle(t, {"M", "K"});
        benchmark::DoNotOptimize(s.nnz());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Swizzle)->Arg(10000)->Arg(100000);

void
BM_PartitionOccupancy(benchmark::State& state)
{
    const auto t = matrix(100000);
    const auto flat = ft::flattenRanks(t, "K", "M");
    for (auto _ : state) {
        auto s = ft::splitRankByOccupancy(flat, "KM", 256, "KM1",
                                          "KM0");
        benchmark::DoNotOptimize(s.nnz());
    }
    state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_PartitionOccupancy);

void
BM_PartitionShape(benchmark::State& state)
{
    const auto t = matrix(100000);
    for (auto _ : state) {
        auto s = ft::splitRankByShape(t, "K", 256, "K1", "K0");
        benchmark::DoNotOptimize(s.nnz());
    }
    state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_PartitionShape);

} // namespace

BENCHMARK_MAIN();
