#!/usr/bin/env python3
"""Perf-regression gate for the CI microbench artifacts.

Compares the jsonRow lines (bench/common.hpp) of the current run
against the previous successful run's artifact and fails when any
configuration's wall time regressed beyond the threshold.

Rows are keyed by their ``bench`` name plus every *string* label field
(accel, dataset, strategy, ...) plus the ``threads`` field, so each
configuration is tracked independently; only the canonical ``wall_ms``
metric is gated (other metrics are informational). Sub-millisecond
rows are skipped — they sit inside scheduler noise on shared runners —
and rows with ``threads > 1`` are reported but not gated (CI vCPUs are
few and shared, so oversubscribed wall times are pure noise).

Usage: perf_diff.py BASELINE_DIR CURRENT_DIR [--threshold 0.15]
Exit status 1 on regression, 0 otherwise (including when no baseline
exists yet — the first run of the gate cannot fail).
"""

import argparse
import json
import pathlib
import sys

MIN_WALL_MS = 1.0  # below this, runner noise dominates

# Multithreaded rows (threads > 1) are informational only: shared CI
# runners have few, noisy vCPUs, so oversubscribed wall times swing
# well beyond any reasonable threshold without a code change. The
# gate enforces the threshold on threads == 1 configurations.
GATED_THREADS = "1"


def load_rows(directory: pathlib.Path):
    rows = {}
    for path in sorted(directory.glob("*.jsonl")):
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue
            if "wall_ms" not in row:
                continue
            try:
                wall_ms = float(row["wall_ms"])
            except (TypeError, ValueError):
                print(
                    f"perf_diff: unparseable wall_ms in {path.name}: "
                    f"{line[:120]}; row skipped"
                )
                continue
            key_fields = [("bench", str(row.get("bench", "")))]
            key_fields += sorted(
                (k, str(v))
                for k, v in row.items()
                if isinstance(v, str) and k != "bench"
            )
            key_fields.append(("threads", str(row.get("threads", 1))))
            rows[tuple(key_fields)] = wall_ms
    return rows


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("current", type=pathlib.Path)
    parser.add_argument("--threshold", type=float, default=0.15)
    args = parser.parse_args()

    if not args.baseline.is_dir():
        print(f"perf_diff: no baseline at {args.baseline}; skipping")
        return 0
    base = load_rows(args.baseline)
    curr = load_rows(args.current)
    if not base or not curr:
        print("perf_diff: empty row set; skipping")
        return 0

    # Rows only one side has are logged, never failed: a bench added
    # in this commit has no baseline yet (it gets gated on the next
    # run), and a bench removed or renamed should not wedge the gate.
    for key in sorted(set(curr) - set(base)):
        label = ", ".join(f"{k}={v}" for k, v in key)
        print(
            f"perf_diff: new configuration (no baseline): {label} "
            f"({curr[key]:.2f} ms); gated from the next baseline on"
        )
    for key in sorted(set(base) - set(curr)):
        label = ", ".join(f"{k}={v}" for k, v in key)
        print(
            f"perf_diff: baseline row missing from current run: "
            f"{label} (was {base[key]:.2f} ms); not gated"
        )

    regressions = []
    compared = 0
    for key, old_ms in base.items():
        new_ms = curr.get(key)
        if new_ms is None or old_ms < MIN_WALL_MS:
            continue
        compared += 1
        ratio = new_ms / old_ms
        label = ", ".join(f"{k}={v}" for k, v in key)
        gated = dict(key).get("threads", "1") == GATED_THREADS
        status = "ok" if gated else "info (not gated)"
        if gated and ratio > 1.0 + args.threshold:
            status = "REGRESSION"
            regressions.append((label, old_ms, new_ms, ratio))
        print(
            f"perf_diff: {label}: {old_ms:.2f} -> {new_ms:.2f} ms "
            f"({ratio - 1.0:+.1%}) {status}"
        )

    print(f"perf_diff: compared {compared} configurations")
    if regressions:
        print(
            f"perf_diff: {len(regressions)} configuration(s) regressed "
            f"beyond {args.threshold:.0%}:"
        )
        for label, old_ms, new_ms, ratio in regressions:
            print(
                f"  {label}: {old_ms:.2f} -> {new_ms:.2f} ms "
                f"({ratio - 1.0:.1%})"
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
