#!/usr/bin/env python3
"""Fault-injection smoke for the serving daemon.

Run against a `teaal-serve` started with

    TEAAL_FAILPOINTS='serve.registry.evict_inflight=trig*1'

so the first registry lookup made by an evaluate evicts the coldest
entry (the model) mid-request. The daemon must answer a structured
`evicted` error naming the model id -- never a dropped connection or
an `unknown_id` -- and a re-register plus retry must succeed.

Usage: failpoint_smoke.py PORT
"""
import json
import os
import socket
import sys
import tempfile

MTX = """%%MatrixMarket matrix coordinate real general
4 4 4
1 1 1.0
2 2 2.0
3 3 3.0
4 4 4.0
"""


def main():
    port = int(sys.argv[1])
    sock = socket.create_connection(("127.0.0.1", port))
    stream = sock.makefile("rw")

    def call(request):
        stream.write(json.dumps(request) + "\n")
        stream.flush()
        line = stream.readline()
        assert line, "daemon dropped the connection"
        return json.loads(line)

    tmp = tempfile.mkdtemp(prefix="teaal_fp_smoke")
    apath = os.path.join(tmp, "a.mtx")
    bpath = os.path.join(tmp, "b.mtx")
    for path in (apath, bpath):
        with open(path, "w") as f:
            f.write(MTX)

    model = call({"op": "compile", "accel": "gamma"})["model"]
    da = call({"op": "load_dataset", "path": apath, "name": "A",
               "rank_ids": ["K", "M"]})["dataset"]
    db = call({"op": "load_dataset", "path": bpath, "name": "B",
               "rank_ids": ["K", "N"]})["dataset"]
    evaluate = {"op": "evaluate", "model": model,
                "bindings": {"A": da, "B": db}, "threads": 1}

    # The armed failpoint fires on this request's model lookup and
    # evicts the model out from under it: structured error, not a
    # crash, not unknown_id.
    first = call(evaluate)
    assert first.get("ok") is False, first
    assert first["error"]["code"] == "evicted", first
    assert first["error"]["key"] == model, first

    # The failpoint's *1 limit is spent; re-registering and retrying
    # is the documented client recovery, and it must work.
    evaluate["model"] = call({"op": "compile", "accel": "gamma"})["model"]
    second = call(evaluate)
    assert second.get("ok") is True, second
    assert second.get("elapsed_ms", -1) >= 0, second

    stream.close()
    sock.close()
    print("failpoint smoke ok: structured `evicted` mid-flight, "
          "then successful retry after re-registering")


if __name__ == "__main__":
    main()
