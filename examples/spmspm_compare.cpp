/**
 * @file
 * Apples-to-apples comparison of the four modeled accelerators
 * (OuterSPACE, Gamma, ExTensor, SIGMA) computing the same SpMSpM on
 * the same real sparse matrix — the kind of side-by-side the paper
 * argues bespoke simulators cannot provide (paper §1, Table 1).
 */
#include <iostream>

#include "accelerators/accelerators.hpp"
#include "baselines/baselines.hpp"
#include "compiler/pipeline.hpp"
#include "util/table.hpp"
#include "workloads/datasets.hpp"

int
main()
{
    using namespace teaal;

    // The wiki-Vote stand-in at 40% scale keeps this example < 10 s.
    const workloads::DatasetInfo& info = workloads::dataset("wi");
    const double scale = 0.4;
    const ft::Tensor a =
        workloads::synthesize(info, "A", 7, scale, {"K", "M"});
    const ft::Tensor b =
        workloads::synthesize(info, "B", 8, scale, {"K", "N"});
    const auto work = baselines::countSpmspmWork(a, b);

    std::cout << "workload: " << info.name << " stand-in at scale "
              << scale << " (" << a.nnz() << " nnz, "
              << work.mults << " effectual multiplies)\n\n";

    TextTable table("SpMSpM on four accelerators (same input)");
    table.setHeader({"accelerator", "time (ms)", "DRAM (MB)",
                     "PO (MB)", "energy (mJ)", "bottleneck"});

    // One workload, borrowed by all four compiled models.
    compiler::Workload workload;
    workload.add("A", a).add("B", b);

    auto report = [&](const std::string& name,
                      compiler::Specification spec) {
        auto model = compiler::compile(std::move(spec));
        compiler::RunOptions once;
        once.cacheState = false; // one run per accelerator
        const auto result = model.run(workload, once);
        double po = 0;
        for (const auto& [t, traffic] : result.traffic)
            po += traffic.poBytes;
        std::string bottleneck;
        for (const auto& block : result.perf.blocks) {
            if (!bottleneck.empty())
                bottleneck += "+";
            bottleneck += block.bottleneck;
        }
        table.addRow({name,
                      TextTable::num(result.perf.totalSeconds * 1e3, 3),
                      TextTable::num(result.totalTrafficBytes() / 1e6,
                                     2),
                      TextTable::num(po / 1e6, 2),
                      TextTable::num(result.energy.totalJoules * 1e3,
                                     2),
                      bottleneck});
    };

    report("OuterSPACE", accel::outerSpace());
    report("Gamma", accel::gamma());
    report("ExTensor", accel::extensor());
    report("SIGMA", accel::sigma());
    table.print();

    std::cout << "\nMKL-like CPU baseline: "
              << TextTable::num(baselines::cpuSpmspmSeconds(work) * 1e3,
                                3)
              << " ms\n";
    return 0;
}
