/**
 * @file
 * Vertex-centric graph processing (paper §8): run BFS through the
 * Figure 12 cascades on an R-MAT graph and compare the three
 * accelerator designs of Figure 13 — Graphicionado, the GraphDynS-like
 * bitmap optimization, and the paper's proposal.
 */
#include <iostream>

#include "graph/vertex_centric.hpp"
#include "util/table.hpp"
#include "workloads/datasets.hpp"

int
main()
{
    using namespace teaal;
    using graph::Algorithm;
    using graph::Design;

    const workloads::Graph g = workloads::rmatGraph(1 << 16, 500000, 3);
    std::cout << "graph: " << g.vertices << " vertices, " << g.edges()
              << " edges (R-MAT)\n\n";

    const graph::RunStats bfs =
        graph::runVertexCentric(g, Algorithm::BFS, 0);

    TextTable iterations("BFS frontier evolution");
    iterations.setHeader(
        {"iter", "active", "edges", "reduced", "updated", "parts"});
    for (std::size_t i = 0; i < bfs.iterations.size(); ++i) {
        const auto& it = bfs.iterations[i];
        iterations.addRow({std::to_string(i),
                           std::to_string(it.active),
                           std::to_string(it.edgesTouched),
                           std::to_string(it.reduced),
                           std::to_string(it.updated),
                           std::to_string(it.partitionsTouched)});
    }
    iterations.print();

    TextTable designs("\nBFS cost under the three designs (Fig. 13)");
    designs.setHeader({"design", "time (ms)", "apply MOPs",
                       "traffic (MB)", "speedup"});
    const double base =
        graph::modelDesign(bfs, Design::Graphicionado, Algorithm::BFS)
            .seconds;
    for (Design d : {Design::Graphicionado, Design::GraphDynSLike,
                     Design::Proposal}) {
        const auto cost = graph::modelDesign(bfs, d, Algorithm::BFS);
        designs.addRow({graph::designName(d),
                        TextTable::num(cost.seconds * 1e3, 3),
                        TextTable::num(cost.applyOps / 1e6, 2),
                        TextTable::num(cost.trafficBytes / 1e6, 2),
                        TextTable::num(base / cost.seconds, 2)});
    }
    designs.print();

    std::cout << "\nThe Figure 12 cascade this executes:\n"
              << graph::graphicionadoCascadeYaml();
    return 0;
}
