/**
 * @file
 * Mapping-space exploration (paper §10 names DSE as the natural next
 * layer above TeAAL): because specifications are data, sweeping a
 * design choice is a loop over configs. This example sweeps Gamma's
 * two occupancy-partitioning chunk sizes — how many rows of A each PE
 * round takes (M chunk) and how many B rows each merger pass covers
 * (K chunk) — and reports the modeled time/traffic frontier on a
 * skewed matrix.
 *
 * The paper's own observation (§8: "our proposed optimization only
 * required meaningful changes to the mapping specification") is what
 * makes this loop possible at all. The pipeline API keeps the sweep
 * honest: specifications compile once per design point, the workload
 * is bound once for the whole sweep, and run() is all a point pays.
 */
#include <iostream>
#include <limits>

#include "accelerators/accelerators.hpp"
#include "compiler/pipeline.hpp"
#include "util/table.hpp"
#include "workloads/datasets.hpp"

int
main()
{
    using namespace teaal;

    // The workload is bound once, up front: every design point borrows
    // the same tensors (no per-point cloning), and each design point
    // is compiled once — the compiled model could be reused across as
    // many workloads as the sweep needs.
    const auto a =
        workloads::powerLawMatrix("A", 1500, 1200, 12000, 5, {"K", "M"});
    const auto b =
        workloads::powerLawMatrix("B", 1500, 1300, 12000, 6, {"K", "N"});
    compiler::Workload workload;
    workload.add("A", a).add("B", b);
    std::cout << "workload: power-law 1500x1200/1300, 12K nnz each\n\n";

    TextTable table("Gamma mapping sweep (rows-per-PE x merger chunk)");
    table.setHeader({"M chunk", "K chunk", "time (us)", "DRAM (MB)",
                     "bottleneck"});

    double best_time = std::numeric_limits<double>::infinity();
    std::pair<std::size_t, std::size_t> best{0, 0};
    for (std::size_t m_chunk : {8u, 32u, 128u}) {
        for (std::size_t k_chunk : {16u, 64u, 256u}) {
            accel::GammaConfig cfg;
            cfg.rowChunk = m_chunk;
            cfg.kChunk = k_chunk;
            auto model = compiler::compile(accel::gamma(cfg));
            compiler::RunOptions once;
            once.cacheState = false; // one run per design point
            const auto result = model.run(workload, once);
            const double us = result.perf.totalSeconds * 1e6;
            table.addRow({std::to_string(m_chunk),
                          std::to_string(k_chunk),
                          TextTable::num(us, 2),
                          TextTable::num(
                              result.totalTrafficBytes() / 1e6, 2),
                          result.perf.blocks[0].bottleneck});
            if (us < best_time) {
                best_time = us;
                best = {m_chunk, k_chunk};
            }
        }
    }
    table.print();
    std::cout << "\nbest mapping: M chunk " << best.first
              << ", K chunk " << best.second << " ("
              << TextTable::num(best_time, 2)
              << " us) — found by editing two numbers in the mapping "
                 "specification.\n";
    return 0;
}
