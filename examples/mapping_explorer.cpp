/**
 * @file
 * The two-speed mapping autotuner (paper §10 names DSE as the natural
 * layer above TeAAL): enumerate a real design space — loop orders ×
 * partitionings × format assignments for SpMSpM on a generic spatial
 * machine — rank every candidate with the analytic model
 * (CompiledModel::estimate, no fibertree walk), and trace-simulate
 * only the top-K survivors. An exhaustive trace search of the same
 * space runs after it, to show the pruned search finds the same best
 * mapping at a fraction of the wall time.
 *
 * Both searches shard across a thread pool with deterministic
 * tie-breaking (tuner::tune), so the printed winner is reproducible
 * at any thread count.
 */
#include <chrono>
#include <iostream>

#include "tuner/tuner.hpp"
#include "util/table.hpp"
#include "workloads/datasets.hpp"

namespace
{

double
wallSeconds(const std::chrono::steady_clock::time_point& t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main()
{
    using namespace teaal;

    // The workload binds once; every candidate borrows the same
    // tensors. Skewed (power-law) inputs are the interesting case for
    // a tuner: densities vary wildly across rows, so mapping choices
    // actually separate.
    const auto a =
        workloads::powerLawMatrix("A", 900, 800, 14000, 5, {"K", "M"});
    const auto b =
        workloads::powerLawMatrix("B", 900, 850, 14000, 6, {"K", "N"});
    compiler::Workload workload;
    workload.add("A", a).add("B", b);

    const auto candidates = tuner::spmspmSearchSpace();
    std::cout << "workload: power-law 900x800 / 900x850, 14K nnz each\n"
              << "design space: " << candidates.size()
              << " candidates (3 loop orders x 3 M tiles x 2x2 leaf "
                 "formats)\n\n";

    tuner::TunerOptions pruned;
    pruned.topK = 4;
    pruned.threads = 4;
    auto t0 = std::chrono::steady_clock::now();
    const tuner::TuneResult fast = tuner::tune(candidates, workload, pruned);
    const double prunedWall = wallSeconds(t0);

    tuner::TunerOptions full;
    full.topK = candidates.size(); // trace everything
    full.threads = 4;
    t0 = std::chrono::steady_clock::now();
    const tuner::TuneResult exact = tuner::tune(candidates, workload, full);
    const double fullWall = wallSeconds(t0);

    TextTable table("analytic ranking (top 8 of " +
                    std::to_string(candidates.size()) + ")");
    table.setHeader(
        {"rank", "mapping", "analytic (us)", "trace (us)", "traced"});
    for (std::size_t r = 0; r < fast.ranking.size() && r < 8; ++r) {
        const tuner::RankedCandidate& rc = fast.ranking[r];
        table.addRow({std::to_string(r + 1), rc.label,
                      TextTable::num(rc.analyticSeconds * 1e6, 2),
                      rc.traced
                          ? TextTable::num(rc.traceSeconds * 1e6, 2)
                          : std::string("-"),
                      rc.traced ? "yes" : "no"});
    }
    table.print();

    const tuner::RankedCandidate& bestFast = fast.best();
    const tuner::RankedCandidate& bestExact = exact.best();
    std::cout << "\npruned search:     best " << bestFast.label << " ("
              << TextTable::num(bestFast.traceSeconds * 1e6, 2)
              << " us modeled), traced " << fast.tracedCount << "/"
              << candidates.size() << ", wall "
              << TextTable::num(prunedWall, 3) << " s\n"
              << "exhaustive trace:  best " << bestExact.label << " ("
              << TextTable::num(bestExact.traceSeconds * 1e6, 2)
              << " us modeled), traced " << exact.tracedCount << "/"
              << candidates.size() << ", wall "
              << TextTable::num(fullWall, 3) << " s\n"
              << "agreement: "
              << (fast.bestIndex == exact.bestIndex ? "yes" : "NO")
              << ", autotuner speedup "
              << TextTable::num(fullWall / prunedWall, 1) << "x\n";
    return fast.bestIndex == exact.bestIndex ? 0 : 1;
}
