/**
 * @file
 * Serving walkthrough: drive the simulation-as-a-service protocol end
 * to end — compile a model, register datasets, evaluate twice (the
 * second request hits the cached plan), and read the introspection
 * endpoints.
 *
 * With no arguments it starts an in-process server on an ephemeral
 * port, so the example is self-contained; pass a port number to talk
 * to an already-running `teaal-serve` daemon instead:
 *
 *   ./teaal-serve --port 7471 &
 *   ./example_serve_client 7471
 *
 * Also demonstrates the robustness surface: a `deadline_ms` too small
 * for the run comes back as a structured `deadline_exceeded` (the
 * daemon stays healthy), and requestWithRetry() retries transient
 * `overloaded`/`evicted` answers with seeded exponential backoff.
 */
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "workloads/datasets.hpp"
#include "workloads/mtx.hpp"

using namespace teaal;

int
main(int argc, char** argv)
{
    // An in-process server unless the caller points us at a daemon.
    std::unique_ptr<serve::Server> local;
    int port = 0;
    if (argc > 1) {
        port = std::atoi(argv[1]);
    } else {
        local = std::make_unique<serve::Server>();
        local->start();
        port = local->port();
        std::cout << "started in-process server on 127.0.0.1:" << port
                  << "\n";
    }

    // The protocol carries dataset *paths*, so materialize two small
    // synthetic operands as Matrix Market files.
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "teaal_serve_example";
    std::filesystem::create_directories(dir);
    const workloads::DatasetInfo& info = workloads::dataset("wi");
    workloads::writeMatrixMarket(
        (dir / "a.mtx").string(),
        workloads::synthesize(info, "A", 11, 0.05, {"K", "M"}));
    workloads::writeMatrixMarket(
        (dir / "b.mtx").string(),
        workloads::synthesize(info, "B", 22, 0.05, {"K", "N"}));

    serve::Client client;
    client.connect(port);
    const auto call = [&](const std::string& line) {
        std::cout << ">> " << line << "\n";
        const std::string response = client.requestLine(line);
        std::cout << "<< " << response << "\n";
        return serve::parseJson(response);
    };

    // 1. Compile the Gamma accelerator model once.
    const serve::Json compiled =
        call(R"({"op":"compile","accel":"gamma","id":1})");
    const std::string model = compiled.find("model")->str();

    // 2. Register both operands as resident packed datasets.
    const std::string da =
        call("{\"op\":\"load_dataset\",\"path\":\"" +
             (dir / "a.mtx").string() +
             "\",\"name\":\"A\",\"rank_ids\":[\"K\",\"M\"]}")
            .find("dataset")
            ->str();
    const std::string db =
        call("{\"op\":\"load_dataset\",\"path\":\"" +
             (dir / "b.mtx").string() +
             "\",\"name\":\"B\",\"rank_ids\":[\"K\",\"N\"]}")
            .find("dataset")
            ->str();

    // 3. Evaluate twice: the first request instantiates and caches
    //    the plan ("cache":"miss"), the second rides it ("hit").
    const std::string evaluate =
        "{\"op\":\"evaluate\",\"model\":\"" + model +
        "\",\"bindings\":{\"A\":\"" + da + "\",\"B\":\"" + db +
        "\"},\"threads\":1}";
    call(evaluate);
    call(evaluate);

    // 4. Introspection: how each Einsum parallelizes, and the
    //    registry/admission/plan-cache counters.
    call("{\"op\":\"sharding_report\",\"model\":\"" + model + "\"}");
    call(R"({"op":"stats"})");

    // 5. Deadlines: a budget far below the run's wall time comes back
    //    as a structured `deadline_exceeded` with `elapsed_ms` — and
    //    the daemon is immediately healthy for the next request.
    call("{\"op\":\"evaluate\",\"model\":\"" + model +
         "\",\"bindings\":{\"A\":\"" + da + "\",\"B\":\"" + db +
         "\"},\"deadline_ms\":0.01,\"id\":\"hurried\"}");

    // 6. Bounded retry with seeded exponential backoff: transient
    //    codes (`overloaded`, `evicted`) are retried, everything else
    //    passes through. Here the request succeeds on the first try;
    //    onRetry would log and approve each backoff step.
    serve::RetryPolicy policy;
    policy.maxAttempts = 3;
    policy.baseDelayMs = 5.0;
    policy.seed = 42;
    policy.onRetry = [](const std::string& code, serve::Json&) {
        std::cout << "   retrying after transient '" << code << "'\n";
        return true;
    };
    unsigned attempts = 0;
    const serve::Json retried = client.requestWithRetry(
        serve::parseJson(evaluate), policy, &attempts);
    std::cout << "requestWithRetry: " << attempts << " attempt(s), ok="
              << (serve::responseErrorCode(retried).empty() ? "true"
                                                            : "false")
              << "\n";

    client.close();
    if (local != nullptr)
        local->stop();
    std::filesystem::remove_all(dir);
    return 0;
}
