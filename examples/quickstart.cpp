/**
 * @file
 * Quickstart: declare a sparse matrix-vector multiply as a TeAAL
 * specification, compile it once into an executable model, run it on
 * real sparse data — twice, to show that repeated runs reuse the
 * compiled plans — and read back the result plus the model's
 * statistics.
 *
 * This is the 60-second tour of the public API:
 *   Specification::parse -> compile -> CompiledModel::run(Workload).
 */
#include <iostream>

#include "compiler/pipeline.hpp"
#include "storage/packed.hpp"
#include "util/table.hpp"
#include "workloads/datasets.hpp"

int
main()
{
    using namespace teaal;

    // 1. A TeAAL specification: Einsum + mapping (paper Fig. 3 style).
    //    Z[m] = A[k, m] * B[k], K split into tiles of 64, with the
    //    M rank parallelized over 16 lanes via occupancy partitioning.
    const std::string spec_text = R"(
einsum:
  declaration:
    A: [K, M]
    B: [K]
    Z: [M]
  expressions:
    - Z[m] = A[k, m] * B[k]
mapping:
  rank-order:
    A: [M, K]
    B: [K]
    Z: [M]
  partitioning:
    Z:
      M: [uniform_occupancy(A.16)]
  loop-order:
    Z: [M1, M0, K]
  spacetime:
    Z:
      space: [M0]
      time: [M1, K]
architecture:
  Simple:
    clock: 1e9
    subtree:
      - name: System
        local:
          - name: Memory
            class: DRAM
            attributes:
              bandwidth: 64
        subtree:
          - name: PE
            num: 16
            local:
              - name: ALU
                class: Compute
                attributes:
                  type: mul
binding:
  Z:
    config: Simple
    components:
      - component: ALU
        bindings:
          - op: mul
)";

    // 2. Compile once: parse the five sections and lower them to an
    //    executable model (loop nests, fused blocks, resolved
    //    hardware tables). Malformed specs fail here, as a
    //    DiagnosticError naming the offending section/key.
    auto spec = compiler::Specification::parse(spec_text);
    auto model = compiler::compile(std::move(spec));

    // 3. Real data: a 1000 x 800 matrix with 5000 nonzeros and a 60%
    //    dense vector. The Workload borrows the tensors — nothing is
    //    deep-copied.
    ft::Tensor a = workloads::uniformMatrix("A", 1000, 800, 5000, 1);
    ft::Tensor b("B", {"K"}, {1000});
    for (ft::Coord k = 0; k < 1000; k += 2) {
        const std::vector<ft::Coord> p{k};
        b.set(p, 1.0 + 0.001 * static_cast<double>(k));
    }
    compiler::Workload workload;
    workload.add("A", a).add("B", b);

    // 4. Run many: the first run binds the workload (prepares tensors,
    //    selects co-iteration strategies) and caches the plans; later
    //    runs only execute. Results are deterministic across runs.
    const compiler::SimulationResult result = model.run(workload);
    const compiler::SimulationResult again = model.run(workload);
    std::cout << "run-to-run deterministic: "
              << (result.perf.totalSeconds == again.perf.totalSeconds &&
                          result.records[0].execStats ==
                              again.records[0].execStats
                      ? "yes"
                      : "NO")
              << "\n";

    const ft::Tensor& z = result.result(model.spec());
    std::cout << "result " << z.toString(8) << "\n\n";

    // 5. Model outputs: per-tensor DRAM traffic, time, energy.
    TextTable table("quickstart: SpMV model statistics");
    table.setHeader({"metric", "value"});
    for (const auto& [tensor, traffic] : result.traffic) {
        table.addRow({tensor + " DRAM read (B)",
                      TextTable::num(traffic.readBytes, 0)});
        if (traffic.writeBytes > 0)
            table.addRow({tensor + " DRAM write (B)",
                          TextTable::num(traffic.writeBytes, 0)});
    }
    table.addRow({"effectual multiplies",
                  TextTable::num(static_cast<double>(
                                     result.records[0].execStats
                                         .computeMuls),
                                 0)});
    table.addRow({"execution time (us)",
                  TextTable::num(result.perf.totalSeconds * 1e6, 2)});
    table.addRow({"bottleneck",
                  result.perf.einsums[0].bottleneck});
    table.addRow({"energy (uJ)",
                  TextTable::num(result.energy.totalJoules * 1e6, 2)});
    table.print();

    // 6. Packed physical storage: the same workload can be bound as
    //    packed rank stores (CSF-style contiguous buffers). The
    //    engine walks the packed buffers directly — no pointer
    //    fibertree is ever built for a concordant packed input, and
    //    results, counters, and traces are byte-identical to the
    //    pointer binding. This is the fast path for data that already
    //    arrives compressed (e.g. workloads::readMatrixMarketPacked).
    const auto packed_a = storage::PackedTensor::fromTensor(a);
    const auto packed_b = storage::PackedTensor::fromTensor(b);
    compiler::Workload packed_workload;
    packed_workload.add("A", packed_a).add("B", packed_b);
    const compiler::SimulationResult packed_result =
        model.run(packed_workload);
    const bool packed_matches =
        packed_result.result(model.spec()).equals(z);
    std::cout << "\npacked binding matches pointer binding: "
              << (packed_matches ? "yes" : "NO") << "\n";
    return packed_matches ? 0 : 1;
}
