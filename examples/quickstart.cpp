/**
 * @file
 * Quickstart: declare a sparse matrix-vector multiply as a TeAAL
 * specification, generate its simulator, run it on a real sparse
 * matrix, and read back the result plus the model's statistics.
 *
 * This is the 60-second tour of the public API:
 *   Specification::parse -> Simulator -> SimulationResult.
 */
#include <iostream>

#include "compiler/compiler.hpp"
#include "util/table.hpp"
#include "workloads/datasets.hpp"

int
main()
{
    using namespace teaal;

    // 1. A TeAAL specification: Einsum + mapping (paper Fig. 3 style).
    //    Z[m] = A[k, m] * B[k], K split into tiles of 64, with the
    //    M rank parallelized over 16 lanes via occupancy partitioning.
    const std::string spec_text = R"(
einsum:
  declaration:
    A: [K, M]
    B: [K]
    Z: [M]
  expressions:
    - Z[m] = A[k, m] * B[k]
mapping:
  rank-order:
    A: [M, K]
    B: [K]
    Z: [M]
  partitioning:
    Z:
      M: [uniform_occupancy(A.16)]
  loop-order:
    Z: [M1, M0, K]
  spacetime:
    Z:
      space: [M0]
      time: [M1, K]
architecture:
  Simple:
    clock: 1e9
    subtree:
      - name: System
        local:
          - name: Memory
            class: DRAM
            attributes:
              bandwidth: 64
        subtree:
          - name: PE
            num: 16
            local:
              - name: ALU
                class: Compute
                attributes:
                  type: mul
binding:
  Z:
    config: Simple
    components:
      - component: ALU
        bindings:
          - op: mul
)";

    auto spec = compiler::Specification::parse(spec_text);
    compiler::Simulator sim(std::move(spec));

    // 2. Real data: a 1000 x 800 matrix with 5000 nonzeros and a 60%
    //    dense vector.
    ft::Tensor a = workloads::uniformMatrix("A", 1000, 800, 5000, 1);
    ft::Tensor b("B", {"K"}, {1000});
    for (ft::Coord k = 0; k < 1000; k += 2) {
        const std::vector<ft::Coord> p{k};
        b.set(p, 1.0 + 0.001 * static_cast<double>(k));
    }

    // 3. Run the generated simulator.
    const compiler::SimulationResult result =
        sim.run({{"A", std::move(a)}, {"B", std::move(b)}});

    const ft::Tensor& z = result.result(sim.spec());
    std::cout << "result " << z.toString(8) << "\n\n";

    // 4. Model outputs: per-tensor DRAM traffic, time, energy.
    TextTable table("quickstart: SpMV model statistics");
    table.setHeader({"metric", "value"});
    for (const auto& [tensor, traffic] : result.traffic) {
        table.addRow({tensor + " DRAM read (B)",
                      TextTable::num(traffic.readBytes, 0)});
        if (traffic.writeBytes > 0)
            table.addRow({tensor + " DRAM write (B)",
                          TextTable::num(traffic.writeBytes, 0)});
    }
    table.addRow({"effectual multiplies",
                  TextTable::num(static_cast<double>(
                                     result.records[0].execStats
                                         .computeMuls),
                                 0)});
    table.addRow({"execution time (us)",
                  TextTable::num(result.perf.totalSeconds * 1e6, 2)});
    table.addRow({"bottleneck",
                  result.perf.einsums[0].bottleneck});
    table.addRow({"energy (uJ)",
                  TextTable::num(result.energy.totalJoules * 1e6, 2)});
    table.print();
    return 0;
}
