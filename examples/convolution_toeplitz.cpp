/**
 * @file
 * Cascades of Einsums beyond SpMSpM (paper §3.1, Table 2): 1D
 * convolution implemented both directly (O[q] = I[q+s] * F[s]) and via
 * the two-stage Toeplitz expansion (T[q,s] = I[q+s]; O = T * F),
 * compiled and run through the pipeline API, with the generated
 * loop-nest plans (CompiledModel::plans) printed for comparison.
 */
#include <iostream>

#include "compiler/pipeline.hpp"
#include "util/random.hpp"

int
main()
{
    using namespace teaal;

    const char* direct_text = "einsum:\n"
                              "  declaration:\n"
                              "    I: [W]\n"
                              "    F: [S]\n"
                              "    O: [Q]\n"
                              "  expressions:\n"
                              "    - O[q] = I[q+s] * F[s]\n";
    const char* toeplitz_text = "einsum:\n"
                                "  declaration:\n"
                                "    I: [W]\n"
                                "    F: [S]\n"
                                "    T: [Q, S]\n"
                                "    O: [Q]\n"
                                "  expressions:\n"
                                "    - T[q, s] = I[q+s]\n"
                                "    - O[q] = T[q, s] * F[s]\n";

    // A sparse input signal and a short dense filter.
    Xoshiro256 rng(11);
    ft::Tensor input("I", {"W"}, {64});
    for (ft::Coord w = 0; w < 64; ++w) {
        if (rng.uniform() < 0.4) {
            const std::vector<ft::Coord> p{w};
            input.set(p, 1.0 + rng.uniform());
        }
    }
    ft::Tensor filter("F", {"S"}, {5});
    for (ft::Coord s = 0; s < 5; ++s) {
        const std::vector<ft::Coord> p{s};
        filter.set(p, 0.5 + rng.uniform());
    }

    auto run_cascade = [&](const char* text) {
        auto model =
            compiler::compile(compiler::Specification::parse(text));
        compiler::Workload w;
        w.add("I", input).add("F", filter);
        const auto result = model.run(w);
        for (const auto& plan : model.plans(w))
            std::cout << plan.toString();
        return result.result(model.spec()).clone();
    };

    std::cout << "=== direct convolution ===\n";
    const ft::Tensor direct = run_cascade(direct_text);
    std::cout << "\n=== Toeplitz expansion (im2col) cascade ===\n";
    const ft::Tensor toeplitz = run_cascade(toeplitz_text);

    std::cout << "\ndirect   " << direct.toString(10) << "\n";
    std::cout << "toeplitz " << toeplitz.toString(10) << "\n";
    std::cout << "\nresults "
              << (direct.equals(toeplitz, 1e-9) ? "MATCH" : "DIFFER")
              << ": the cascade decomposition preserves semantics while"
                 " exposing\nindependent mapping freedom for each stage"
                 " (paper Insight 1).\n";
    return direct.equals(toeplitz, 1e-9) ? 0 : 1;
}
