/**
 * @file
 * Cascades of Einsums beyond SpMSpM (paper §3.1, Table 2): 1D
 * convolution implemented both directly (O[q] = I[q+s] * F[s]) and via
 * the two-stage Toeplitz expansion (T[q,s] = I[q+s]; O = T * F),
 * executed on the same fibertree machinery, with the generated
 * loop-nest plans printed for comparison.
 */
#include <iostream>
#include <map>

#include "exec/executor.hpp"
#include "ir/plan.hpp"
#include "util/random.hpp"
#include "yaml/yaml.hpp"

int
main()
{
    using namespace teaal;

    const char* direct_text = "declaration:\n"
                              "  I: [W]\n"
                              "  F: [S]\n"
                              "  O: [Q]\n"
                              "expressions:\n"
                              "  - O[q] = I[q+s] * F[s]\n";
    const char* toeplitz_text = "declaration:\n"
                                "  I: [W]\n"
                                "  F: [S]\n"
                                "  T: [Q, S]\n"
                                "  O: [Q]\n"
                                "expressions:\n"
                                "  - T[q, s] = I[q+s]\n"
                                "  - O[q] = T[q, s] * F[s]\n";

    // A sparse input signal and a short dense filter.
    Xoshiro256 rng(11);
    ft::Tensor input("I", {"W"}, {64});
    for (ft::Coord w = 0; w < 64; ++w) {
        if (rng.uniform() < 0.4) {
            const std::vector<ft::Coord> p{w};
            input.set(p, 1.0 + rng.uniform());
        }
    }
    ft::Tensor filter("F", {"S"}, {5});
    for (ft::Coord s = 0; s < 5; ++s) {
        const std::vector<ft::Coord> p{s};
        filter.set(p, 0.5 + rng.uniform());
    }

    auto run_cascade = [&](const char* text) {
        const auto spec = einsum::EinsumSpec::parse(yaml::parse(text));
        trace::Observer obs;
        std::map<std::string, ft::Tensor> tensors{
            {"I", input.clone()}, {"F", filter.clone()}};
        std::vector<std::string> intermediates;
        for (const auto& expr : spec.expressions) {
            const auto plan =
                ir::buildPlan(expr, spec, {}, tensors, intermediates);
            std::cout << plan.toString();
            exec::Executor ex(plan, obs);
            tensors.insert_or_assign(expr.output.name, ex.run());
            intermediates.push_back(expr.output.name);
        }
        return tensors.at("O").clone();
    };

    std::cout << "=== direct convolution ===\n";
    const ft::Tensor direct = run_cascade(direct_text);
    std::cout << "\n=== Toeplitz expansion (im2col) cascade ===\n";
    const ft::Tensor toeplitz = run_cascade(toeplitz_text);

    std::cout << "\ndirect   " << direct.toString(10) << "\n";
    std::cout << "toeplitz " << toeplitz.toString(10) << "\n";
    std::cout << "\nresults "
              << (direct.equals(toeplitz, 1e-9) ? "MATCH" : "DIFFER")
              << ": the cascade decomposition preserves semantics while"
                 " exposing\nindependent mapping freedom for each stage"
                 " (paper Insight 1).\n";
    return direct.equals(toeplitz, 1e-9) ? 0 : 1;
}
