/**
 * @file
 * Model-property tests: qualitative behaviours of the generated
 * performance models that must hold for the paper's conclusions to be
 * reproducible (traffic monotonicity, design-feature effects, energy
 * consistency).
 */
#include <gtest/gtest.h>

#include "accelerators/accelerators.hpp"
#include "baselines/baselines.hpp"
#include "compiler/compiler.hpp"
#include "workloads/datasets.hpp"

namespace teaal
{
namespace
{

compiler::SimulationResult
run(compiler::Specification spec, const ft::Tensor& a,
    const ft::Tensor& b)
{
    compiler::Simulator sim(std::move(spec));
    return sim.run({{"A", a.clone()}, {"B", b.clone()}});
}

/** Skewed test matrices (reuse-sensitive). */
struct Inputs
{
    ft::Tensor a;
    ft::Tensor b;
};

Inputs
skewed(std::uint64_t seed)
{
    return {workloads::powerLawMatrix("A", 600, 500, 4000, seed,
                                      {"K", "M"}),
            workloads::powerLawMatrix("B", 600, 550, 4000, seed + 1,
                                      {"K", "N"})};
}

TEST(TrafficProperties, GammaFiberCacheMonotonicity)
{
    // Bigger FiberCache can only reduce B's DRAM traffic.
    const Inputs in = skewed(3);
    double previous = std::numeric_limits<double>::infinity();
    for (double bytes : {2.0 * 1024, 16.0 * 1024, 256.0 * 1024}) {
        accel::GammaConfig cfg;
        cfg.fiberCacheBytes = bytes;
        const auto result = run(accel::gamma(cfg), in.a, in.b);
        const double b_traffic = result.traffic.at("B").total();
        EXPECT_LE(b_traffic, previous * 1.001) << bytes;
        previous = b_traffic;
    }
}

TEST(TrafficProperties, ExTensorStreamsOperandsPerTilePass)
{
    // With buffet-windowed tiles, shrinking the N1/M1 tiles increases
    // the number of passes and so the A/B re-read traffic.
    const Inputs in = skewed(4);
    accel::ExTensorConfig coarse;
    coarse.tileK1 = 512;
    coarse.tileK0 = 64;
    coarse.tileM1 = 512;
    coarse.tileM0 = 64;
    coarse.tileN1 = 512;
    coarse.tileN0 = 64;
    accel::ExTensorConfig fine = coarse;
    fine.tileM1 = 128;
    fine.tileN1 = 128;
    const auto big = run(accel::extensor(coarse), in.a, in.b);
    const auto small = run(accel::extensor(fine), in.a, in.b);
    const double big_ab = big.traffic.at("A").total() +
                          big.traffic.at("B").total();
    const double small_ab = small.traffic.at("A").total() +
                            small.traffic.at("B").total();
    EXPECT_GT(small_ab, big_ab);
}

TEST(TrafficProperties, OuterSpaceTrafficDominatedByT)
{
    const Inputs in = skewed(5);
    const auto result = run(accel::outerSpace(), in.a, in.b);
    const double t = result.traffic.at("T").total();
    const double a = result.traffic.at("A").total();
    const double b = result.traffic.at("B").total();
    // The multiply-merge round trip of partial products is the
    // defining cost of OuterSPACE (Fig. 9c).
    EXPECT_GT(t, a);
    EXPECT_GT(t, b);
    // T is written by the multiply phase and read back by the merge.
    EXPECT_GT(result.traffic.at("T").writeBytes, 0);
    EXPECT_GT(result.traffic.at("T").readBytes, 0);
}

TEST(TrafficProperties, GammaBeatsOuterSpaceOnTraffic)
{
    // The headline qualitative comparison: row-wise with on-chip
    // fusion moves far less data than multiply-merge.
    const Inputs in = skewed(6);
    const auto gamma = run(accel::gamma(), in.a, in.b);
    const auto outer = run(accel::outerSpace(), in.a, in.b);
    EXPECT_LT(gamma.totalTrafficBytes(), outer.totalTrafficBytes());
}

TEST(TrafficProperties, MergerRadixReducesPasses)
{
    const Inputs in = skewed(7);
    double previous = std::numeric_limits<double>::infinity();
    for (int radix : {2, 8, 64}) {
        accel::GammaConfig cfg;
        cfg.mergerWays = radix;
        const auto result = run(accel::gamma(cfg), in.a, in.b);
        double elems = 0;
        for (const auto& record : result.records) {
            const auto it = record.components.find("TopMerger");
            if (it != record.components.end())
                elems += it->second.count("merge_elems");
        }
        EXPECT_LE(elems, previous * 1.001) << radix;
        previous = elems;
    }
}

TEST(TrafficProperties, SkipAheadBeatsTwoFinger)
{
    const Inputs in = skewed(8);
    accel::ExTensorConfig two;
    two.intersection = "two-finger";
    accel::ExTensorConfig skip;
    skip.intersection = "skip-ahead";
    auto cfg_small = [](accel::ExTensorConfig c) {
        c.tileK1 = 256;
        c.tileK0 = 32;
        c.tileM1 = 256;
        c.tileM0 = 64;
        c.tileN1 = 256;
        c.tileN0 = 64;
        return c;
    };
    const auto t = run(accel::extensor(cfg_small(two)), in.a, in.b);
    const auto s = run(accel::extensor(cfg_small(skip)), in.a, in.b);
    const double t_cycles =
        t.records[0].components.at("SkipAhead").count("cycles");
    const double s_cycles =
        s.records[0].components.at("SkipAhead").count("cycles");
    EXPECT_LT(s_cycles, t_cycles);
}

TEST(TrafficProperties, EnergyTracksTraffic)
{
    // More DRAM traffic (OuterSPACE) must cost more DRAM energy than
    // the fused design (Gamma) on the same input.
    const Inputs in = skewed(9);
    const auto gamma = run(accel::gamma(), in.a, in.b);
    const auto outer = run(accel::outerSpace(), in.a, in.b);
    auto dram_energy = [](const compiler::SimulationResult& r,
                          const std::string& name) {
        double joules = 0;
        const auto it = r.energy.byComponent.find(name);
        if (it != r.energy.byComponent.end())
            joules = it->second;
        return joules;
    };
    EXPECT_GT(dram_energy(outer, "HBM"), dram_energy(gamma, "HBM"));
}

TEST(TrafficProperties, PartialOutputsGrowWithKTiling)
{
    // ExTensor PO traffic grows as K is cut into more K2 tiles
    // (each tile revisits the output partials).
    const Inputs in = skewed(10);
    auto base = [](long k1) {
        accel::ExTensorConfig c;
        c.tileK1 = k1;
        c.tileK0 = 32;
        c.tileM1 = 256;
        c.tileM0 = 64;
        c.tileN1 = 256;
        c.tileN0 = 64;
        return c;
    };
    const auto few = run(accel::extensor(base(600)), in.a, in.b);
    const auto many = run(accel::extensor(base(128)), in.a, in.b);
    double few_po = 0, many_po = 0;
    for (const auto& [t, tr] : few.traffic)
        few_po += tr.poBytes;
    for (const auto& [t, tr] : many.traffic)
        many_po += tr.poBytes;
    EXPECT_GE(many_po, few_po);
}

TEST(TrafficProperties, DataDrivenBeatsAnalyticalOnSkewedData)
{
    // The paper's methodological claim (Fig. 10a): on skewed inputs,
    // the uniform-density analytical model mispredicts the effectual
    // multiply count that the data-driven executor measures exactly.
    const Inputs in = skewed(11);
    const auto work = baselines::countSpmspmWork(in.a, in.b);
    const double da = static_cast<double>(in.a.nnz()) / (600.0 * 500.0);
    const double db = static_cast<double>(in.b.nnz()) / (600.0 * 550.0);
    const auto est =
        baselines::sparseloopExtensor({}, 600, 500, 550, da, db);
    const double analytic_err =
        std::abs(est.mults - static_cast<double>(work.mults)) /
        static_cast<double>(work.mults);
    // Power-law inputs correlate nonzeros: uniform models are off.
    EXPECT_GT(analytic_err, 0.10);
}

} // namespace
} // namespace teaal
