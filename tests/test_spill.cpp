/**
 * @file
 * Disk-spilled trace replay (trace/spill.hpp, RunOptions::spillDir):
 * sharded runs that stream capture-log frames to disk segments must be
 * byte-identical — results, counters, traffic, delivered stream with
 * batch boundaries — to resident sharded runs and to the serial
 * baseline, across every Table 1 accelerator. Plus the lifecycle
 * rules: segments are process-private scratch deleted after replay
 * (spillKeep retains them), serial runs never touch the directory,
 * and SpillStats reports what was written.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <vector>

#include "accelerators/accelerators.hpp"
#include "compiler/pipeline.hpp"
#include "workloads/datasets.hpp"

namespace teaal
{
namespace
{

namespace fs = std::filesystem;
using compiler::RunOptions;
using compiler::SimulationResult;
using compiler::Workload;

class TempDir
{
  public:
    TempDir()
    {
        const auto* info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::temp_directory_path() /
               (std::string("teaal_spill_") + info->test_suite_name() +
                "_" + info->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    ~TempDir() { fs::remove_all(dir_); }

    std::string str() const { return dir_.string(); }

    std::size_t
    fileCount() const
    {
        std::size_t n = 0;
        for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir_))
            ++n;
        return n;
    }

  private:
    fs::path dir_;
};

/** Semantic stream log with batch boundaries (the packed-exec test's
 *  recorder): spilled replay must deliver the identical sequence. */
class StreamRecorder : public trace::Observer
{
  public:
    std::vector<std::string> log;

    void
    onEventBatch(const trace::EventBatch& batch) override
    {
        log.push_back("batch:" + std::to_string(batch.size()));
        trace::Observer::onEventBatch(batch);
    }
    void
    onLoopEnter(std::size_t loop, ft::Coord c) override
    {
        add("L", loop, c);
    }
    void
    onCoIterate(std::size_t loop, std::size_t steps, std::size_t matches,
                std::size_t drivers, std::uint64_t pe) override
    {
        add("I", loop, steps, matches, drivers, pe);
    }
    void
    onCoordScan(int input, std::size_t level, std::size_t count,
                std::uint64_t pe) override
    {
        add("S", input, level, count, pe);
    }
    void
    onTensorAccess(int input, const std::string& tensor,
                   std::size_t level, ft::Coord c, const void* key,
                   const ft::Payload* payload, std::uint64_t pe) override
    {
        (void)key;
        (void)payload;
        add("A", input, level, c, pe);
        log.back() += ":" + tensor;
    }
    void
    onOutputWrite(const std::string& tensor, std::size_t level,
                  ft::Coord c, std::uint64_t path_key, bool inserted,
                  bool at_leaf, std::uint64_t pe) override
    {
        add("W", level, c, path_key, inserted, at_leaf, pe);
        log.back() += ":" + tensor;
    }
    void
    onCompute(char op, std::uint64_t pe, std::size_t count) override
    {
        add("C", op, pe, count);
    }
    void
    onSwizzle(const std::string& tensor, std::size_t elements,
              std::size_t ways, bool online) override
    {
        add("Z", elements, ways, online);
        log.back() += ":" + tensor;
    }
    void
    onTensorCopy(const std::string& from, const std::string& to,
                 std::size_t elements) override
    {
        add("Y", elements);
        log.back() += ":" + from + ">" + to;
    }

  private:
    template <typename... Args>
    void
    add(const char* tag, Args... args)
    {
        std::ostringstream os;
        os << tag;
        ((os << ':' << args), ...);
        log.push_back(os.str());
    }
};

void
expectSameResults(const SimulationResult& x, const SimulationResult& y)
{
    ASSERT_EQ(x.records.size(), y.records.size());
    for (std::size_t i = 0; i < x.records.size(); ++i) {
        EXPECT_TRUE(x.records[i].execStats == y.records[i].execStats)
            << "einsum " << i;
        EXPECT_EQ(x.records[i].traceEvents, y.records[i].traceEvents)
            << "einsum " << i;
        EXPECT_EQ(x.records[i].traceBatches, y.records[i].traceBatches)
            << "einsum " << i;
        ASSERT_EQ(x.records[i].traffic.size(),
                  y.records[i].traffic.size());
        for (const auto& [tensor, tt] : x.records[i].traffic) {
            const auto it = y.records[i].traffic.find(tensor);
            ASSERT_NE(it, y.records[i].traffic.end()) << tensor;
            EXPECT_DOUBLE_EQ(tt.readBytes, it->second.readBytes)
                << tensor;
            EXPECT_DOUBLE_EQ(tt.writeBytes, it->second.writeBytes)
                << tensor;
            EXPECT_DOUBLE_EQ(tt.poBytes, it->second.poBytes) << tensor;
        }
    }
    EXPECT_DOUBLE_EQ(x.perf.totalSeconds, y.perf.totalSeconds);
    EXPECT_DOUBLE_EQ(x.energy.totalJoules, y.energy.totalJoules);
    ASSERT_EQ(x.tensors.size(), y.tensors.size());
    for (const auto& [name, t] : x.tensors) {
        const auto it = y.tensors.find(name);
        ASSERT_NE(it, y.tensors.end()) << name;
        EXPECT_TRUE(t.equals(it->second)) << name;
    }
}

compiler::Specification
specFor(const std::string& name)
{
    if (name == "gamma") {
        accel::GammaConfig cfg;
        cfg.pes = 4;
        cfg.rowChunk = 4;
        cfg.kChunk = 8;
        cfg.fiberCacheBytes = 64 * 1024;
        return accel::gamma(cfg);
    }
    if (name == "extensor") {
        accel::ExTensorConfig cfg;
        cfg.pes = 4;
        cfg.tileK1 = 16;
        cfg.tileK0 = 4;
        cfg.tileM1 = 16;
        cfg.tileM0 = 4;
        cfg.tileN1 = 16;
        cfg.tileN0 = 4;
        cfg.llcBytes = 256 * 1024;
        return accel::extensor(cfg);
    }
    if (name == "outerspace") {
        accel::OuterSpaceConfig cfg;
        cfg.chunkOuter = 32;
        cfg.chunkInner = 8;
        cfg.mergeChunkOuter = 16;
        cfg.mergeChunkInner = 4;
        return accel::outerSpace(cfg);
    }
    accel::SigmaConfig cfg;
    cfg.kTile = 16;
    cfg.stationaryChunk = 64;
    return accel::sigma(cfg);
}

Workload
workloadFor(std::uint64_t seed)
{
    Workload w;
    w.add("A",
          workloads::uniformMatrix("A", 40, 32, 300, seed, {"K", "M"}))
        .add("B", workloads::uniformMatrix("B", 40, 36, 300, seed + 1,
                                           {"K", "N"}));
    return w;
}

class SpillAccelerators : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SpillAccelerators, SpilledShardedRunMatchesResidentAndSerial)
{
    auto model = compiler::compile(specFor(GetParam()));
    const Workload w = workloadFor(41);

    StreamRecorder serial_rec;
    RunOptions opts;
    opts.threads = 1;
    opts.observers = {&serial_rec};
    const SimulationResult serial = model.run(w, opts);

    StreamRecorder resident_rec;
    opts.threads = 4;
    opts.observers = {&resident_rec};
    const SimulationResult resident = model.run(w, opts);

    const TempDir tmp;
    StreamRecorder spilled_rec;
    opts.spillDir = tmp.str();
    // Tiny segments force many frames per slice, exercising every
    // frame-boundary path (walkEnd cuts, counter restarts, replay).
    opts.spillSegmentBytes = 4096;
    opts.observers = {&spilled_rec};
    const SimulationResult spilled = model.run(w, opts);

    expectSameResults(serial, resident);
    expectSameResults(serial, spilled);
    EXPECT_EQ(serial_rec.log, resident_rec.log);
    EXPECT_EQ(serial_rec.log, spilled_rec.log);

    // Something actually spilled, and the scratch was cleaned up.
    EXPECT_GT(spilled.spill.files, 0u) << GetParam();
    EXPECT_GT(spilled.spill.frames, 0u) << GetParam();
    EXPECT_GT(spilled.spill.bytes, 0u) << GetParam();
    EXPECT_EQ(tmp.fileCount(), 0u) << GetParam();

    // Resident runs report no spill activity.
    EXPECT_EQ(resident.spill.files, 0u);
    EXPECT_EQ(resident.spill.frames, 0u);
    EXPECT_EQ(resident.spill.bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Table1, SpillAccelerators,
                         ::testing::Values("gamma", "extensor",
                                           "outerspace", "sigma"),
                         [](const auto& info) { return info.param; });

TEST(Spill, SerialRunsNeverTouchTheDirectory)
{
    auto model = compiler::compile(specFor("gamma"));
    const Workload w = workloadFor(42);
    const TempDir tmp;

    RunOptions opts;
    opts.threads = 1;
    opts.spillDir = tmp.str();
    opts.spillSegmentBytes = 4096;
    const SimulationResult r = model.run(w, opts);
    EXPECT_EQ(r.spill.files, 0u);
    EXPECT_EQ(r.spill.frames, 0u);
    EXPECT_EQ(tmp.fileCount(), 0u);
}

TEST(Spill, LargeSegmentsMeanNoFilesButIdenticalResults)
{
    // With the default 4 MiB segment nothing in this workload crosses
    // the threshold: every slice replays the ordinary resident way,
    // no file is ever created, and results still match.
    auto model = compiler::compile(specFor("gamma"));
    const Workload w = workloadFor(43);

    RunOptions opts;
    opts.threads = 4;
    const SimulationResult resident = model.run(w, opts);

    const TempDir tmp;
    opts.spillDir = tmp.str();
    const SimulationResult spilled = model.run(w, opts);

    expectSameResults(resident, spilled);
    EXPECT_EQ(spilled.spill.files, 0u);
    EXPECT_EQ(tmp.fileCount(), 0u);
}

TEST(Spill, KeepRetainsSegmentsForInspection)
{
    auto model = compiler::compile(specFor("gamma"));
    const Workload w = workloadFor(44);
    const TempDir tmp;

    RunOptions opts;
    opts.threads = 4;
    opts.spillDir = tmp.str();
    opts.spillSegmentBytes = 4096;
    opts.spillKeep = true;
    const SimulationResult r = model.run(w, opts);
    EXPECT_GT(r.spill.files, 0u);
    EXPECT_GT(tmp.fileCount(), 0u);

    // Retained segments are real files with the reported bytes.
    std::uint64_t on_disk = 0;
    for (const auto& e : fs::directory_iterator(tmp.str())) {
        EXPECT_NE(e.path().filename().string().find("teaal-spill-"),
                  std::string::npos);
        on_disk += static_cast<std::uint64_t>(fs::file_size(e.path()));
    }
    EXPECT_EQ(on_disk, r.spill.bytes);
}

TEST(Spill, RepeatedSpilledRunsAreDeterministic)
{
    auto model = compiler::compile(specFor("sigma"));
    const Workload w = workloadFor(45);
    const TempDir tmp;

    RunOptions opts;
    opts.threads = 4;
    opts.spillDir = tmp.str();
    opts.spillSegmentBytes = 4096;
    const SimulationResult first = model.run(w, opts);
    const SimulationResult second = model.run(w, opts);
    expectSameResults(first, second);
    EXPECT_EQ(first.spill.frames, second.spill.frames);
    EXPECT_EQ(first.spill.bytes, second.spill.bytes);
}

} // namespace
} // namespace teaal
