/**
 * @file
 * Unit tests for the mini-YAML parser, including the exact shapes used
 * by the TeAAL specifications in paper Figures 3, 5, and 8.
 */
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "yaml/yaml.hpp"

namespace teaal::yaml
{
namespace
{

TEST(Yaml, EmptyDocumentIsNull)
{
    EXPECT_TRUE(parse("").isNull());
    EXPECT_TRUE(parse("  \n # comment only\n").isNull());
}

TEST(Yaml, ScalarValue)
{
    const Node n = parse("key: hello\n");
    EXPECT_EQ(n.at("key").scalar(), "hello");
}

TEST(Yaml, TypedScalars)
{
    const Node n = parse("a: 42\nb: 2.5\n");
    EXPECT_EQ(n.at("a").asLong(), 42);
    EXPECT_DOUBLE_EQ(n.at("b").asDouble(), 2.5);
    EXPECT_THROW(n.at("a").sequence(), SpecError);
}

TEST(Yaml, NestedMapping)
{
    const Node n = parse("outer:\n  inner: v\n  other: w\n");
    EXPECT_EQ(n.at("outer").at("inner").scalar(), "v");
    EXPECT_EQ(n.at("outer").at("other").scalar(), "w");
}

TEST(Yaml, MappingPreservesOrder)
{
    const Node n = parse("z: 1\na: 2\nm: 3\n");
    EXPECT_EQ(n.keys(), (std::vector<std::string>{"z", "a", "m"}));
}

TEST(Yaml, InlineFlowSequence)
{
    const Node n = parse("A: [K, M]\n");
    EXPECT_EQ(n.at("A").scalarList(),
              (std::vector<std::string>{"K", "M"}));
}

TEST(Yaml, FlowSequenceWithParenElements)
{
    const Node n =
        parse("KM: [uniform_occupancy(A.256), uniform_occupancy(A.16)]\n");
    const auto items = n.at("KM").scalarList();
    ASSERT_EQ(items.size(), 2u);
    EXPECT_EQ(items[0], "uniform_occupancy(A.256)");
    EXPECT_EQ(items[1], "uniform_occupancy(A.16)");
}

TEST(Yaml, ParenthesizedKey)
{
    const Node n = parse("(K, M): [flatten()]\n");
    EXPECT_EQ(n.at("(K, M)").scalarList(),
              (std::vector<std::string>{"flatten()"}));
}

TEST(Yaml, BlockSequenceOfScalars)
{
    const Node n = parse("exprs:\n  - a = b\n  - c = d\n");
    const auto& seq = n.at("exprs").sequence();
    ASSERT_EQ(seq.size(), 2u);
    EXPECT_EQ(seq[0].scalar(), "a = b");
    EXPECT_EQ(seq[1].scalar(), "c = d");
}

TEST(Yaml, SequenceOfMappings)
{
    const std::string text = "binding:\n"
                             "  - tensor: T\n"
                             "    rank: N\n"
                             "    type: elem\n"
                             "  - tensor: A\n"
                             "    rank: K\n";
    const Node n = parse(text);
    const auto& seq = n.at("binding").sequence();
    ASSERT_EQ(seq.size(), 2u);
    EXPECT_EQ(seq[0].at("tensor").scalar(), "T");
    EXPECT_EQ(seq[0].at("rank").scalar(), "N");
    EXPECT_EQ(seq[0].at("type").scalar(), "elem");
    EXPECT_EQ(seq[1].at("tensor").scalar(), "A");
}

TEST(Yaml, CommentsStripped)
{
    const Node n = parse("a: 1 # trailing\n# whole line\nb: 2\n");
    EXPECT_EQ(n.at("a").scalar(), "1");
    EXPECT_EQ(n.at("b").scalar(), "2");
}

TEST(Yaml, MissingKeyThrows)
{
    const Node n = parse("a: 1\n");
    EXPECT_THROW(n.at("zzz"), SpecError);
    EXPECT_EQ(n.find("zzz"), nullptr);
    EXPECT_TRUE(n.has("a"));
}

TEST(Yaml, DuplicateKeyThrows)
{
    EXPECT_THROW(parse("a: 1\na: 2\n"), SpecError);
}

TEST(Yaml, BadIndentThrows)
{
    EXPECT_THROW(parse("a: 1\n    junk_under_scalar: 2\n  x: 1\n"),
                 SpecError);
}

TEST(Yaml, UnterminatedFlowThrows)
{
    EXPECT_THROW(parse("a: [K, M\n"), SpecError);
}

TEST(Yaml, NestedFlowSequences)
{
    const Node n = parse("a: [[1, 2], [3]]\n");
    const auto& outer = n.at("a").sequence();
    ASSERT_EQ(outer.size(), 2u);
    EXPECT_EQ(outer[0].scalarList(),
              (std::vector<std::string>{"1", "2"}));
    EXPECT_EQ(outer[1].scalarList(), (std::vector<std::string>{"3"}));
}

TEST(Yaml, ScalarListOfSingleScalar)
{
    const Node n = parse("a: K\n");
    EXPECT_EQ(n.at("a").scalarList(), (std::vector<std::string>{"K"}));
}

/// The full OuterSPACE specification from paper Figure 3 must parse.
TEST(Yaml, OuterSpaceFigure3Shape)
{
    const std::string text =
        "einsum:\n"
        "  declaration:\n"
        "    A: [K, M]\n"
        "    B: [K, N]\n"
        "    T: [K, M, N]\n"
        "    Z: [M, N]\n"
        "  expressions:\n"
        "    - T[k, m, n] = A[k, m] * B[k, n]\n"
        "    - Z[m, n] = T[k, m, n]\n"
        "mapping:\n"
        "  rank-order:\n"
        "    A: [K, M]\n"
        "    B: [K, N]\n"
        "    T: [M, K, N]\n"
        "    Z: [M, N]\n"
        "  partitioning:\n"
        "    T:\n"
        "      (K, M): [flatten()]\n"
        "      KM: [uniform_occupancy(A.256), uniform_occupancy(A.16)]\n"
        "    Z:\n"
        "      M: [uniform_occupancy(T.128), uniform_occupancy(T.8)]\n"
        "  loop-order:\n"
        "    T: [KM2, KM1, KM0, N]\n"
        "    Z: [M2, M1, M0, N, K]\n"
        "  spacetime:\n"
        "    T:\n"
        "      space: [KM1, KM0]\n"
        "      time: [KM2, N]\n"
        "    Z:\n"
        "      space: [M1, M0]\n"
        "      time: [M2, N, K]\n";
    const Node n = parse(text);
    EXPECT_EQ(n.at("einsum").at("expressions").sequence().size(), 2u);
    EXPECT_EQ(n.at("mapping")
                  .at("partitioning")
                  .at("T")
                  .at("(K, M)")
                  .scalarList(),
              (std::vector<std::string>{"flatten()"}));
    EXPECT_EQ(n.at("mapping").at("loop-order").at("Z").scalarList(),
              (std::vector<std::string>{"M2", "M1", "M0", "N", "K"}));
    EXPECT_EQ(n.at("mapping").at("spacetime").at("T").at("space")
                  .scalarList(),
              (std::vector<std::string>{"KM1", "KM0"}));
}

TEST(Yaml, DumpRoundTripsStructure)
{
    const std::string text = "a:\n  b: [1, 2]\n  c: x\nd:\n  - e: 1\n";
    const Node n = parse(text);
    const Node again = parse(n.dump());
    EXPECT_EQ(again.at("a").at("c").scalar(), "x");
    EXPECT_EQ(again.at("a").at("b").scalarList(),
              (std::vector<std::string>{"1", "2"}));
    EXPECT_EQ(again.at("d").sequence()[0].at("e").scalar(), "1");
}

} // namespace
} // namespace teaal::yaml
