/**
 * @file
 * Disk-backed packed store (storage/store.hpp): write/map round-trip
 * fidelity, execution equivalence of mapped stores against the
 * in-memory packed path (per Table 1 accelerator, threads 1 and 4,
 * results/counters/streams byte-identical), the validation matrix for
 * damaged files (bad magic, version, truncation, header/payload
 * corruption), and the mapping-lifetime rules (copies share the map,
 * residentBytes charges file size).
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "accelerators/accelerators.hpp"
#include "compiler/pipeline.hpp"
#include "storage/packed.hpp"
#include "storage/store.hpp"
#include "util/diagnostic.hpp"
#include "workloads/datasets.hpp"

namespace teaal
{
namespace
{

namespace fs = std::filesystem;
using compiler::RunOptions;
using compiler::SimulationResult;
using compiler::Workload;

/** Per-test scratch directory, removed on destruction. */
class TempDir
{
  public:
    TempDir()
    {
        const auto* info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::temp_directory_path() /
               (std::string("teaal_store_") + info->test_suite_name() +
                "_" + info->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    ~TempDir() { fs::remove_all(dir_); }

    std::string
    path(const std::string& file) const
    {
        return (dir_ / file).string();
    }

    const fs::path& dir() const { return dir_; }

  private:
    fs::path dir_;
};

storage::PackedTensor
samplePacked(std::uint64_t seed, const fmt::TensorFormat& tf = {})
{
    return storage::PackedTensor::fromTensor(
        workloads::uniformMatrix("A", 40, 32, 300, seed, {"K", "M"}),
        tf);
}

void
expectSameBuffers(const storage::PackedTensor& x,
                  const storage::PackedTensor& y)
{
    ASSERT_EQ(x.numRanks(), y.numRanks());
    EXPECT_EQ(x.name(), y.name());
    EXPECT_EQ(x.rankIds(), y.rankIds());
    for (std::size_t l = 0; l < x.numRanks(); ++l) {
        EXPECT_EQ(x.rank(l).shape, y.rank(l).shape) << "rank " << l;
        EXPECT_EQ(x.rank(l).flatIds, y.rank(l).flatIds) << "rank " << l;
        EXPECT_EQ(x.rank(l).flatShapes, y.rank(l).flatShapes)
            << "rank " << l;
        EXPECT_EQ(x.levelType(l), y.levelType(l)) << "rank " << l;
        EXPECT_EQ(x.level(l).seg, y.level(l).seg) << "rank " << l;
        EXPECT_EQ(x.level(l).crd, y.level(l).crd) << "rank " << l;
        EXPECT_EQ(x.level(l).bits, y.level(l).bits) << "rank " << l;
        EXPECT_EQ(x.level(l).bitBase, y.level(l).bitBase)
            << "rank " << l;
        EXPECT_EQ(x.level(l).bitRank, y.level(l).bitRank)
            << "rank " << l;
    }
    EXPECT_EQ(x.values(), y.values());
    EXPECT_EQ(x.format().config, y.format().config);
    EXPECT_EQ(x.format().rankOrder, y.format().rankOrder);
    ASSERT_EQ(x.format().ranks.size(), y.format().ranks.size());
}

// ------------------------------------------------------- round trip

TEST(Store, WriteMapRoundTripsBuffersAndMetadata)
{
    const TempDir tmp;
    const auto original = samplePacked(5);
    const std::string path = tmp.path("a.teaal");
    storage::writeStore(path, original);

    const storage::PackedTensor mapped =
        storage::mapStore(path, /*verifyPayload=*/true);
    expectSameBuffers(original, mapped);
    EXPECT_TRUE(mapped.mapped());
    EXPECT_FALSE(original.mapped());
    EXPECT_EQ(mapped.storePath(), path);
    EXPECT_EQ(mapped.residentBytes(),
              static_cast<std::size_t>(fs::file_size(path)));
    EXPECT_TRUE(mapped.toTensor().equals(original.toTensor()));
}

TEST(Store, BitmapFormatAuxiliariesSurviveTheTrip)
{
    fmt::TensorFormat tf;
    fmt::RankFormat rf;
    rf.type = fmt::RankFormat::Type::B;
    tf.ranks["K"] = rf;
    tf.ranks["M"] = rf;
    const TempDir tmp;
    const auto original = samplePacked(6, tf);
    ASSERT_FALSE(original.level(1).bits.empty());
    const std::string path = tmp.path("b.teaal");
    storage::writeStore(path, original);
    const auto mapped = storage::mapStore(path, true);
    expectSameBuffers(original, mapped);
}

TEST(Store, EmptyTensorRoundTrips)
{
    const TempDir tmp;
    storage::PackedBuilder builder("A", {"K", "M"}, {16, 16});
    const auto original = std::move(builder).finish();
    const std::string path = tmp.path("empty.teaal");
    storage::writeStore(path, original);
    const auto mapped = storage::mapStore(path, true);
    expectSameBuffers(original, mapped);
    EXPECT_EQ(mapped.nnz(), 0u);
}

TEST(Store, CopiesShareTheMappingAndOutliveTheOriginal)
{
    const TempDir tmp;
    const std::string path = tmp.path("c.teaal");
    storage::writeStore(path, samplePacked(7));

    storage::PackedTensor copy;
    {
        const auto mapped = storage::mapStore(path);
        copy = mapped;
        // Same external pages, not a heap duplicate.
        EXPECT_EQ(copy.level(1).crd.data(), mapped.level(1).crd.data());
    }
    // The original mapping owner is gone; the copy keeps the file
    // mapped (deleting the path is fine on POSIX — pages live on).
    fs::remove(path);
    EXPECT_TRUE(copy.mapped());
    EXPECT_EQ(copy.nnz(), copy.values().size());
    EXPECT_GT(copy.values().size(), 0u);
    double sum = 0;
    for (const ft::Value v : copy.values())
        sum += v;
    EXPECT_NE(sum, 0.0);
}

TEST(Store, RewritingAMappedStoreCopiesItThrough)
{
    const TempDir tmp;
    const std::string path = tmp.path("d.teaal");
    const std::string path2 = tmp.path("d2.teaal");
    storage::writeStore(path, samplePacked(8));
    const auto mapped = storage::mapStore(path);
    storage::writeStore(path2, mapped); // mapped tensor as the source
    const auto again = storage::mapStore(path2, true);
    expectSameBuffers(mapped, again);
}

TEST(Store, IsStoreFileSniffsMagic)
{
    const TempDir tmp;
    const std::string store = tmp.path("e.teaal");
    storage::writeStore(store, samplePacked(9));
    EXPECT_TRUE(storage::isStoreFile(store));

    const std::string text = tmp.path("e.mtx");
    std::ofstream(text) << "%%MatrixMarket matrix coordinate real "
                           "general\n1 1 1\n1 1 1.0\n";
    EXPECT_FALSE(storage::isStoreFile(text));
    EXPECT_FALSE(storage::isStoreFile(tmp.path("missing")));
}

// -------------------------------------------- damaged-file matrix

/** Flip one byte at @p offset of @p path. */
void
flipByte(const std::string& path, std::uint64_t offset)
{
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offset));
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x5a);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&b, 1);
}

void
expectStoreError(const std::string& path, const char* needle,
                 bool verify = false)
{
    try {
        (void)storage::mapStore(path, verify);
        FAIL() << "expected DiagnosticError for " << needle;
    } catch (const DiagnosticError& e) {
        EXPECT_EQ(e.diagnostic().section, "store");
        EXPECT_EQ(e.diagnostic().key, path);
        EXPECT_NE(std::string(e.what()).find(needle),
                  std::string::npos)
            << e.what();
    }
}

class StoreDamage : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = tmp_.path("victim.teaal");
        storage::writeStore(path_, samplePacked(10));
        size_ = static_cast<std::uint64_t>(fs::file_size(path_));
    }

    TempDir tmp_;
    std::string path_;
    std::uint64_t size_ = 0;
};

TEST_F(StoreDamage, MissingAndTinyFiles)
{
    expectStoreError(tmp_.path("nope.teaal"), "cannot open");
    std::ofstream(tmp_.path("tiny.teaal")) << "short";
    expectStoreError(tmp_.path("tiny.teaal"), "not a packed store");
}

TEST_F(StoreDamage, BadMagic)
{
    flipByte(path_, 0);
    expectStoreError(path_, "bad magic");
}

TEST_F(StoreDamage, UnsupportedVersion)
{
    flipByte(path_, 8); // version field, checked before the checksum
    expectStoreError(path_, "unsupported store version");
}

TEST_F(StoreDamage, TruncatedFile)
{
    fs::resize_file(path_, size_ - 1);
    expectStoreError(path_, "truncated store");
}

TEST_F(StoreDamage, CorruptHeaderFailsChecksum)
{
    flipByte(path_, 70); // inside the variable header
    expectStoreError(path_, "checksum mismatch");
}

TEST_F(StoreDamage, CorruptPrologueCountersFailChecksum)
{
    flipByte(path_, 48); // nnz field — covered by the header checksum
    expectStoreError(path_, "checksum mismatch");
}

TEST_F(StoreDamage, CorruptPayloadCaughtOnlyByVerify)
{
    flipByte(path_, size_ - 1); // last payload byte
    // Default open skips the payload checksum (cold-start path)...
    const auto mapped = storage::mapStore(path_);
    EXPECT_TRUE(mapped.mapped());
    // ...the explicit verify pass (teaal-pack --verify) catches it.
    expectStoreError(path_, "payload checksum mismatch",
                     /*verify=*/true);
}

// ------------------------------------- execution equivalence matrix

/** Shared with test_packed_exec.cpp in spirit: semantic stream log
 *  including batch boundaries. */
class StreamRecorder : public trace::Observer
{
  public:
    std::vector<std::string> log;

    void
    onEventBatch(const trace::EventBatch& batch) override
    {
        log.push_back("batch:" + std::to_string(batch.size()));
        trace::Observer::onEventBatch(batch);
    }
    void
    onLoopEnter(std::size_t loop, ft::Coord c) override
    {
        add("L", loop, c);
    }
    void
    onCoIterate(std::size_t loop, std::size_t steps, std::size_t matches,
                std::size_t drivers, std::uint64_t pe) override
    {
        add("I", loop, steps, matches, drivers, pe);
    }
    void
    onCoordScan(int input, std::size_t level, std::size_t count,
                std::uint64_t pe) override
    {
        add("S", input, level, count, pe);
    }
    void
    onTensorAccess(int input, const std::string& tensor,
                   std::size_t level, ft::Coord c, const void* key,
                   const ft::Payload* payload, std::uint64_t pe) override
    {
        (void)key;
        (void)payload;
        add("A", input, level, c, pe);
        log.back() += ":" + tensor;
    }
    void
    onOutputWrite(const std::string& tensor, std::size_t level,
                  ft::Coord c, std::uint64_t path_key, bool inserted,
                  bool at_leaf, std::uint64_t pe) override
    {
        add("W", level, c, path_key, inserted, at_leaf, pe);
        log.back() += ":" + tensor;
    }
    void
    onCompute(char op, std::uint64_t pe, std::size_t count) override
    {
        add("C", op, pe, count);
    }
    void
    onSwizzle(const std::string& tensor, std::size_t elements,
              std::size_t ways, bool online) override
    {
        add("Z", elements, ways, online);
        log.back() += ":" + tensor;
    }
    void
    onTensorCopy(const std::string& from, const std::string& to,
                 std::size_t elements) override
    {
        add("Y", elements);
        log.back() += ":" + from + ">" + to;
    }

  private:
    template <typename... Args>
    void
    add(const char* tag, Args... args)
    {
        std::ostringstream os;
        os << tag;
        ((os << ':' << args), ...);
        log.push_back(os.str());
    }
};

void
expectSameResults(const SimulationResult& x, const SimulationResult& y)
{
    ASSERT_EQ(x.records.size(), y.records.size());
    for (std::size_t i = 0; i < x.records.size(); ++i) {
        EXPECT_TRUE(x.records[i].execStats == y.records[i].execStats)
            << "einsum " << i;
        EXPECT_EQ(x.records[i].traceEvents, y.records[i].traceEvents)
            << "einsum " << i;
        EXPECT_EQ(x.records[i].traceBatches, y.records[i].traceBatches)
            << "einsum " << i;
        ASSERT_EQ(x.records[i].traffic.size(),
                  y.records[i].traffic.size());
        for (const auto& [tensor, tt] : x.records[i].traffic) {
            const auto it = y.records[i].traffic.find(tensor);
            ASSERT_NE(it, y.records[i].traffic.end()) << tensor;
            EXPECT_DOUBLE_EQ(tt.readBytes, it->second.readBytes)
                << tensor;
            EXPECT_DOUBLE_EQ(tt.writeBytes, it->second.writeBytes)
                << tensor;
            EXPECT_DOUBLE_EQ(tt.poBytes, it->second.poBytes) << tensor;
        }
    }
    EXPECT_DOUBLE_EQ(x.perf.totalSeconds, y.perf.totalSeconds);
    EXPECT_DOUBLE_EQ(x.energy.totalJoules, y.energy.totalJoules);
    ASSERT_EQ(x.tensors.size(), y.tensors.size());
    for (const auto& [name, t] : x.tensors) {
        const auto it = y.tensors.find(name);
        ASSERT_NE(it, y.tensors.end()) << name;
        EXPECT_TRUE(t.equals(it->second)) << name;
    }
}

/**
 * Run @p spec with inputs bound as in-memory packed tensors and as
 * mapped store files; every delivered byte must match.
 */
void
expectMappedEquivalence(compiler::Specification spec, unsigned threads,
                        std::uint64_t seed)
{
    const ft::Tensor a =
        workloads::uniformMatrix("A", 40, 32, 300, seed, {"K", "M"});
    const ft::Tensor b = workloads::uniformMatrix("B", 40, 36, 300,
                                                  seed + 1, {"K", "N"});
    auto model = compiler::compile(std::move(spec));

    const auto packedA = storage::PackedTensor::fromTensor(
        a, model.spec().formats.getLenient("A"));
    const auto packedB = storage::PackedTensor::fromTensor(
        b, model.spec().formats.getLenient("B"));

    const TempDir tmp;
    storage::writeStore(tmp.path("a.teaal"), packedA);
    storage::writeStore(tmp.path("b.teaal"), packedB);

    Workload memory_w;
    memory_w.add("A", packedA).add("B", packedB);
    Workload mapped_w;
    mapped_w.add("A", storage::mapStore(tmp.path("a.teaal")))
        .add("B", storage::mapStore(tmp.path("b.teaal")));

    StreamRecorder memory_rec;
    RunOptions opts;
    opts.threads = threads;
    opts.observers = {&memory_rec};
    const SimulationResult base = model.run(memory_w, opts);

    StreamRecorder mapped_rec;
    opts.observers = {&mapped_rec};
    const SimulationResult mapped = model.run(mapped_w, opts);

    expectSameResults(base, mapped);
    EXPECT_EQ(memory_rec.log, mapped_rec.log);
}

class StoreAccelerators
    : public ::testing::TestWithParam<std::tuple<std::string, unsigned>>
{
};

TEST_P(StoreAccelerators, MappedStoreMatchesInMemoryPacked)
{
    const auto& [name, threads] = GetParam();
    if (name == "gamma") {
        accel::GammaConfig cfg;
        cfg.pes = 4;
        cfg.rowChunk = 4;
        cfg.kChunk = 8;
        cfg.fiberCacheBytes = 64 * 1024;
        expectMappedEquivalence(accel::gamma(cfg), threads, 31);
    } else if (name == "extensor") {
        accel::ExTensorConfig cfg;
        cfg.pes = 4;
        cfg.tileK1 = 16;
        cfg.tileK0 = 4;
        cfg.tileM1 = 16;
        cfg.tileM0 = 4;
        cfg.tileN1 = 16;
        cfg.tileN0 = 4;
        cfg.llcBytes = 256 * 1024;
        expectMappedEquivalence(accel::extensor(cfg), threads, 32);
    } else if (name == "outerspace") {
        accel::OuterSpaceConfig cfg;
        cfg.chunkOuter = 32;
        cfg.chunkInner = 8;
        cfg.mergeChunkOuter = 16;
        cfg.mergeChunkInner = 4;
        expectMappedEquivalence(accel::outerSpace(cfg), threads, 33);
    } else {
        accel::SigmaConfig cfg;
        cfg.kTile = 16;
        cfg.stationaryChunk = 64;
        expectMappedEquivalence(accel::sigma(cfg), threads, 34);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Table1, StoreAccelerators,
    ::testing::Combine(::testing::Values("gamma", "extensor",
                                         "outerspace", "sigma"),
                       ::testing::Values(1u, 4u)),
    [](const auto& info) {
        return std::get<0>(info.param) + "_t" +
               std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace teaal
