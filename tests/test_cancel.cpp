/**
 * @file
 * Cooperative cancellation and deadlines (util/cancel.hpp + the
 * engine/executor/pipeline plumbing): token and deadline semantics,
 * the ThreadPool exception-propagation regression, structured
 * CancelledError surfacing at threads 1 and 4, and the determinism
 * guarantee — a run cancelled mid-flight and then re-run to
 * completion is byte-identical to one that was never cancelled, with
 * no poisoned plan-cache entries left behind.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>

#include "accelerators/accelerators.hpp"
#include "compiler/pipeline.hpp"
#include "model/record.hpp"
#include "trace/observer.hpp"
#include "util/cancel.hpp"
#include "util/thread_pool.hpp"
#include "workloads/datasets.hpp"

namespace teaal
{
namespace
{

using compiler::CompiledModel;
using compiler::RunOptions;
using compiler::SimulationResult;
using compiler::Workload;

// ------------------------------------------------------------ units

TEST(CancelToken, FirstReasonWinsAndResetRearms)
{
    util::CancelToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_EQ(token.reason(), util::CancelReason::None);

    token.cancel(util::CancelReason::User);
    token.cancel(util::CancelReason::Shutdown); // loses the race
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason(), util::CancelReason::User);

    token.reset();
    EXPECT_FALSE(token.cancelled());
    token.cancel(util::CancelReason::Deadline);
    EXPECT_EQ(token.reason(), util::CancelReason::Deadline);
}

TEST(CancelDeadline, UnsetNeverExpiresAndPastExpiresNow)
{
    const util::Deadline none;
    EXPECT_FALSE(none.set());
    EXPECT_FALSE(none.expired());
    EXPECT_GT(none.remainingMs(), 1e12);

    const util::Deadline past = util::Deadline::in(-5.0);
    EXPECT_TRUE(past.set());
    EXPECT_TRUE(past.expired());
    EXPECT_LT(past.remainingMs(), 0.0);

    const util::Deadline far = util::Deadline::in(1e9);
    EXPECT_TRUE(far.set());
    EXPECT_FALSE(far.expired());
    EXPECT_GT(far.remainingMs(), 0.0);

    const util::Deadline at = util::Deadline::at(
        std::chrono::steady_clock::now() - std::chrono::seconds(1));
    EXPECT_TRUE(at.expired());
}

TEST(CancelCheck, TokenReasonBeatsExpiredDeadline)
{
    util::CancelToken token;
    token.cancel(util::CancelReason::Shutdown);

    util::CancelCheck check;
    check.token = &token;
    check.deadline = util::Deadline::in(-1.0);
    check.start = std::chrono::steady_clock::now();
    ASSERT_TRUE(check.armed());
    // The explicit reason wins: a shutdown is not a timeout.
    EXPECT_EQ(check.state(), util::CancelReason::Shutdown);

    util::CancelCheck deadline_only;
    deadline_only.deadline = util::Deadline::in(-1.0);
    deadline_only.start = std::chrono::steady_clock::now();
    EXPECT_EQ(deadline_only.state(), util::CancelReason::Deadline);

    try {
        deadline_only.throwIfCancelled("einsum 'Z', loop rank 'k'");
        FAIL() << "expected CancelledError";
    } catch (const util::CancelledError& e) {
        EXPECT_EQ(e.reason(), util::CancelReason::Deadline);
        EXPECT_GE(e.elapsedMs(), 0.0);
        EXPECT_EQ(e.position(), "einsum 'Z', loop rank 'k'");
        EXPECT_EQ(e.diagnostic().section, "cancelled");
        EXPECT_NE(e.diagnostic().message.find("deadline exceeded"),
                  std::string::npos);
    }
    // Is-a DiagnosticError, so generic catch sites still work.
    EXPECT_THROW(deadline_only.throwIfCancelled("x"), DiagnosticError);
}

TEST(CancelCheck, UnarmedCheckNeverFires)
{
    const util::CancelCheck check;
    EXPECT_FALSE(check.armed());
    EXPECT_EQ(check.state(), util::CancelReason::None);
    EXPECT_NO_THROW(check.throwIfCancelled("anywhere"));
}

// --------------------------------------- ThreadPool error plumbing

TEST(ThreadPoolErrors, JobExceptionRethrownAtWaitNotTerminate)
{
    util::ThreadPool pool(3);
    util::ThreadPool::Ticket ticket = pool.launch(3, [](unsigned slot) {
        if (slot == 1)
            throw std::runtime_error("slot 1 boom");
    });
    try {
        ticket.wait();
        FAIL() << "expected the job's exception at wait()";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "slot 1 boom");
    }

    // The pool survives a throwing job: workers keep serving.
    std::atomic<int> ran{0};
    pool.launch(3, [&](unsigned) { ran.fetch_add(1); }).wait();
    EXPECT_EQ(ran.load(), 3);
}

// ------------------------------------------------- engine plumbing

accel::GammaConfig
smallGamma()
{
    accel::GammaConfig cfg;
    cfg.pes = 4;
    cfg.rowChunk = 4;
    cfg.kChunk = 8;
    cfg.fiberCacheBytes = 64 * 1024;
    return cfg;
}

accel::ExTensorConfig
smallExTensor()
{
    accel::ExTensorConfig cfg;
    cfg.pes = 4;
    cfg.tileK1 = 16;
    cfg.tileK0 = 4;
    cfg.tileM1 = 16;
    cfg.tileM0 = 4;
    cfg.tileN1 = 16;
    cfg.tileN0 = 4;
    cfg.llcBytes = 256 * 1024;
    return cfg;
}

Workload
matmulWorkload(ft::Tensor& a, ft::Tensor& b)
{
    Workload w;
    w.add("A", a).add("B", b);
    return w;
}

/** Observer that requests cancellation at the first trace batch — a
 *  deterministic mid-run cancel with no timing assumptions. */
class CancelAtFirstBatch : public trace::Observer
{
  public:
    explicit CancelAtFirstBatch(util::CancelToken& token)
        : token_(&token)
    {
    }

    void
    onEventBatch(const trace::EventBatch&) override
    {
        token_->cancel(util::CancelReason::User);
    }

  private:
    util::CancelToken* token_;
};

TEST(CancelRun, PreCancelledTokenStopsBeforeAnyWork)
{
    ft::Tensor a =
        workloads::uniformMatrix("A", 40, 32, 300, 23, {"K", "M"});
    ft::Tensor b =
        workloads::uniformMatrix("B", 40, 36, 300, 24, {"K", "N"});
    const Workload w = matmulWorkload(a, b);

    for (const unsigned threads : {1u, 4u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        auto model = compiler::compile(accel::gamma(smallGamma()));
        util::CancelToken token;
        token.cancel();
        RunOptions opts;
        opts.threads = threads;
        opts.cancelToken = &token;
        try {
            model.run(w, opts);
            FAIL() << "expected CancelledError";
        } catch (const util::CancelledError& e) {
            EXPECT_EQ(e.reason(), util::CancelReason::User);
        }
        // Un-cancel: the model is immediately healthy again.
        token.reset();
        EXPECT_NO_THROW(model.run(w, opts));
    }
}

TEST(CancelRun, DeadlineStopsShardedRunAndPoolStaysUsable)
{
    ft::Tensor a =
        workloads::uniformMatrix("A", 64, 64, 1200, 31, {"K", "M"});
    ft::Tensor b =
        workloads::uniformMatrix("B", 64, 64, 1200, 32, {"K", "N"});
    const Workload w = matmulWorkload(a, b);
    util::ThreadPool pool(4);

    auto model = compiler::compile(accel::gamma(smallGamma()));
    // Calibrate: one full run tells us a deadline the next run cannot
    // possibly meet, whatever this machine's speed.
    RunOptions opts;
    opts.threads = 4;
    opts.pool = &pool;
    const auto t0 = std::chrono::steady_clock::now();
    const SimulationResult full = model.run(w, opts);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();

    opts.deadline = util::Deadline::in(
        std::max(0.01, wall_ms / 100.0));
    try {
        model.run(w, opts);
        FAIL() << "expected deadline CancelledError";
    } catch (const util::CancelledError& e) {
        EXPECT_EQ(e.reason(), util::CancelReason::Deadline);
        EXPECT_FALSE(e.position().empty());
    }

    // No leaked tickets, no wedged workers: the same pool completes
    // the same run once the deadline is lifted, identically.
    opts.deadline = util::Deadline();
    const SimulationResult redo = model.run(w, opts);
    EXPECT_EQ(redo.perf.totalSeconds, full.perf.totalSeconds);
    EXPECT_EQ(redo.energy.totalJoules, full.energy.totalJoules);
}

// ------------------------------------------ determinism guarantee

/** Byte-exact comparison of the counters that matter for figures:
 *  exec stats, trace diagnostics, traffic rows, perf and energy. */
void
expectIdenticalResults(const SimulationResult& x,
                       const SimulationResult& y, const char* what)
{
    ASSERT_EQ(x.records.size(), y.records.size()) << what;
    for (std::size_t i = 0; i < x.records.size(); ++i) {
        const model::EinsumRecord& p = x.records[i];
        const model::EinsumRecord& q = y.records[i];
        SCOPED_TRACE(std::string(what) + ", einsum " +
                     std::to_string(i) + " (" + p.output + ")");
        EXPECT_TRUE(p.execStats == q.execStats);
        EXPECT_EQ(p.traceEvents, q.traceEvents);
        EXPECT_EQ(p.traceBatches, q.traceBatches);
        ASSERT_EQ(p.traffic.size(), q.traffic.size());
        for (const auto& [tensor, tp] : p.traffic) {
            const auto it = q.traffic.find(tensor);
            ASSERT_NE(it, q.traffic.end()) << tensor;
            EXPECT_EQ(tp.readBytes, it->second.readBytes) << tensor;
            EXPECT_EQ(tp.writeBytes, it->second.writeBytes) << tensor;
            EXPECT_EQ(tp.poBytes, it->second.poBytes) << tensor;
        }
    }
    EXPECT_EQ(x.perf.totalSeconds, y.perf.totalSeconds) << what;
    EXPECT_EQ(x.energy.totalJoules, y.energy.totalJoules) << what;
}

/**
 * The satellite contract, per accelerator: cancel a run mid-flight,
 * then re-run to completion — results, counters, and trace
 * diagnostics must be byte-identical to a serial run that was never
 * cancelled, at threads 1 and 4, and the aborted attempt must leave
 * no half-instantiated plan-cache entry behind.
 */
template <typename MakeSpec>
void
expectCancelledRerunIdentical(MakeSpec make_spec)
{
    ft::Tensor a =
        workloads::uniformMatrix("A", 40, 32, 300, 51, {"K", "M"});
    ft::Tensor b =
        workloads::uniformMatrix("B", 40, 36, 300, 52, {"K", "N"});
    const Workload w = matmulWorkload(a, b);

    auto reference_model = compiler::compile(make_spec());
    RunOptions serial;
    serial.threads = 1;
    const SimulationResult reference = reference_model.run(w, serial);

    auto model = compiler::compile(make_spec());
    util::CancelToken token;
    CancelAtFirstBatch canceller(token);
    RunOptions cancelled;
    cancelled.threads = 1;
    cancelled.cancelToken = &token;
    cancelled.observers.push_back(&canceller);
    EXPECT_THROW(model.run(w, cancelled), util::CancelledError);

    // The aborted attempt's half-built state was dropped, not cached:
    // nothing resident, and the drop was counted as an eviction.
    const compiler::PlanCacheStats dropped = model.planCacheStats();
    EXPECT_EQ(dropped.entries, 0u);
    EXPECT_GE(dropped.evictions, 1u);

    for (const unsigned threads : {1u, 4u}) {
        SCOPED_TRACE("re-run threads=" + std::to_string(threads));
        RunOptions clean;
        clean.threads = threads;
        const SimulationResult redo = model.run(w, clean);
        expectIdenticalResults(reference, redo,
                               "never-cancelled serial vs "
                               "cancelled-then-rerun");
    }
    // The completed state cached normally: the second clean run hit.
    EXPECT_GE(model.planCacheStats().hits, 1u);
}

TEST(CancelDeterminism, GammaCancelledRerunByteIdentical)
{
    expectCancelledRerunIdentical(
        [] { return accel::gamma(smallGamma()); });
}

TEST(CancelDeterminism, ExTensorCancelledRerunByteIdentical)
{
    expectCancelledRerunIdentical(
        [] { return accel::extensor(smallExTensor()); });
}

} // namespace
} // namespace teaal
