/**
 * @file
 * Extended executor coverage: the Eyeriss 4-D convolution Einsum
 * (two affine index expressions), dot products (scalar output),
 * the Cooley-Tukey FFT-step cascade (constant indices), the
 * factorized-MTTKRP equivalence (Table 2 rows executed, not just
 * parsed), co-iteration strategy equivalence (two-finger, gallop,
 * and dense-drive must agree functionally on any plan), and the
 * batched trace bus (bit-identical replay, >= 10x fewer virtual
 * calls).
 */
#include <gtest/gtest.h>

#include <map>

#include "exec/executor.hpp"
#include "ir/plan.hpp"
#include "trace/batch.hpp"
#include "util/random.hpp"
#include "yaml/yaml.hpp"

namespace teaal
{
namespace
{

using ft::Coord;
using ft::Tensor;

Tensor
runCascade(const std::string& einsum_yaml,
           std::map<std::string, Tensor> tensors)
{
    const auto spec =
        einsum::EinsumSpec::parse(yaml::parse(einsum_yaml));
    trace::Observer obs;
    std::vector<std::string> produced;
    Tensor result;
    for (const auto& e : spec.expressions) {
        const auto plan = ir::buildPlan(e, spec, {}, tensors, produced);
        exec::Executor ex(plan, obs);
        result = ex.run();
        tensors.insert_or_assign(e.output.name, result.clone());
        produced.push_back(e.output.name);
    }
    return result;
}

TEST(ExecExtended, EyerissConvMatchesBruteForce)
{
    // O[b,m,p,q] = I[b,c,p+r,q+s] * F[c,m,r,s] (Table 2, Eyeriss).
    const char* einsum =
        "declaration:\n"
        "  I: [B, C, H, W]\n"
        "  F: [C, M, R, S]\n"
        "  O: [B, M, P, Q]\n"
        "expressions:\n"
        "  - O[b, m, p, q] = I[b, c, p+r, q+s] * F[c, m, r, s]\n";
    const Coord B = 2, C = 3, H = 6, W = 7, M = 2, R = 2, S = 3;
    const Coord P = H - R + 1, Q = W - S + 1;

    Xoshiro256 rng(55);
    Tensor input("I", {"B", "C", "H", "W"}, {B, C, H, W});
    Tensor filter("F", {"C", "M", "R", "S"}, {C, M, R, S});
    for (Coord b = 0; b < B; ++b)
        for (Coord c = 0; c < C; ++c)
            for (Coord h = 0; h < H; ++h)
                for (Coord w = 0; w < W; ++w)
                    if (rng.uniform() < 0.5) {
                        const std::vector<Coord> p{b, c, h, w};
                        input.set(p, 1.0 + rng.uniform());
                    }
    for (Coord c = 0; c < C; ++c)
        for (Coord m = 0; m < M; ++m)
            for (Coord r = 0; r < R; ++r)
                for (Coord s = 0; s < S; ++s)
                    if (rng.uniform() < 0.8) {
                        const std::vector<Coord> p{c, m, r, s};
                        filter.set(p, 0.5 + rng.uniform());
                    }

    const Tensor o = runCascade(
        einsum, {{"I", input.clone()}, {"F", filter.clone()}});

    for (Coord b = 0; b < B; ++b) {
        for (Coord m = 0; m < M; ++m) {
            for (Coord p = 0; p < P; ++p) {
                for (Coord q = 0; q < Q; ++q) {
                    double ref = 0;
                    for (Coord c = 0; c < C; ++c)
                        for (Coord r = 0; r < R; ++r)
                            for (Coord s = 0; s < S; ++s) {
                                const std::vector<Coord> pi{b, c, p + r,
                                                            q + s};
                                const std::vector<Coord> pf{c, m, r, s};
                                ref += input.at(pi) * filter.at(pf);
                            }
                    const std::vector<Coord> po{b, m, p, q};
                    ASSERT_NEAR(o.at(po), ref, 1e-9)
                        << b << "," << m << "," << p << "," << q;
                }
            }
        }
    }
}

TEST(ExecExtended, DotProductScalarOutput)
{
    const char* einsum = "declaration:\n"
                         "  A: [K]\n"
                         "  B: [K]\n"
                         "  Z: []\n"
                         "expressions:\n"
                         "  - Z[] = A[k] * B[k]\n";
    Tensor a("A", {"K"}, {10});
    Tensor b("B", {"K"}, {10});
    double ref = 0;
    for (Coord k = 0; k < 10; k += 2) {
        const std::vector<Coord> p{k};
        a.set(p, static_cast<double>(k + 1));
        b.set(p, 2.0);
        ref += static_cast<double>(k + 1) * 2.0;
    }
    const Tensor z =
        runCascade(einsum, {{"A", a.clone()}, {"B", b.clone()}});
    // Scalar results live at coordinate 0 of the internal rank.
    ASSERT_EQ(z.numRanks(), 1u);
    const std::vector<Coord> origin{0};
    EXPECT_DOUBLE_EQ(z.at(origin), ref);
}

TEST(ExecExtended, FftStepCascadeExecutes)
{
    // The Cooley-Tukey step of Table 2: constant indices select
    // twiddle planes; the final outputs are sum and difference.
    const char* einsum =
        "declaration:\n"
        "  P: [Z, K0, N1, W]\n"
        "  X: [N1, Z]\n"
        "  E0: [K0]\n"
        "  O0: [K0]\n"
        "  T: [K0]\n"
        "  Y0: [K0]\n"
        "  Y1: [K0]\n"
        "expressions:\n"
        "  - E0[k0] = P[0, k0, n1, 0] * X[n1, 0]\n"
        "  - O0[k0] = P[0, k0, n1, 0] * X[n1, 1]\n"
        "  - T[k0] = P[0, k0, 0, 1] * O0[k0]\n"
        "  - Y0[k0] = E0[k0] + T[k0]\n"
        "  - Y1[k0] = E0[k0] - T[k0]\n";

    const Coord K0 = 4, N1 = 2;
    Tensor p("P", {"Z", "K0", "N1", "W"}, {1, K0, N1, 2});
    Tensor x("X", {"N1", "Z"}, {N1, 2});
    Xoshiro256 rng(66);
    for (Coord k = 0; k < K0; ++k) {
        for (Coord n = 0; n < N1; ++n) {
            const std::vector<Coord> pp{0, k, n, 0};
            p.set(pp, 1.0 + rng.uniform());
        }
        const std::vector<Coord> tw{0, k, 0, 1};
        p.set(tw, 0.5 + rng.uniform()); // twiddle for T
    }
    for (Coord n = 0; n < N1; ++n) {
        const std::vector<Coord> even{n, 0}, odd{n, 1};
        x.set(even, 1.0 + rng.uniform());
        x.set(odd, 1.0 + rng.uniform());
    }

    const auto spec = einsum::EinsumSpec::parse(yaml::parse(einsum));
    trace::Observer obs;
    std::map<std::string, Tensor> tensors{{"P", p.clone()},
                                          {"X", x.clone()}};
    std::vector<std::string> produced;
    for (const auto& e : spec.expressions) {
        const auto plan = ir::buildPlan(e, spec, {}, tensors, produced);
        exec::Executor ex(plan, obs);
        tensors.insert_or_assign(e.output.name, ex.run());
        produced.push_back(e.output.name);
    }

    for (Coord k = 0; k < K0; ++k) {
        double e0 = 0, o0 = 0;
        for (Coord n = 0; n < N1; ++n) {
            const std::vector<Coord> pp{0, k, n, 0};
            const std::vector<Coord> xe{n, 0}, xo{n, 1};
            e0 += p.at(pp) * x.at(xe);
            o0 += p.at(pp) * x.at(xo);
        }
        const std::vector<Coord> tw{0, k, 0, 1};
        const double t = p.at(tw) * o0;
        const std::vector<Coord> pk{k};
        EXPECT_NEAR(tensors.at("Y0").at(pk), e0 + t, 1e-9);
        EXPECT_NEAR(tensors.at("Y1").at(pk), e0 - t, 1e-9);
    }
}

TEST(ExecExtended, FactorizedMttkrpEqualsDirect)
{
    // Table 2: factorized MTTKRP must equal the three-operand form.
    const char* direct =
        "declaration:\n"
        "  T: [I, J, K]\n  A: [K, R]\n  B: [J, R]\n  C: [I, R]\n"
        "expressions:\n"
        "  - C[i, r] = T[i, j, k] * B[j, r] * A[k, r]\n";
    const char* factorized =
        "declaration:\n"
        "  T: [I, J, K]\n  A: [K, R]\n  B: [J, R]\n"
        "  S: [I, J, R]\n  C: [I, R]\n"
        "expressions:\n"
        "  - S[i, j, r] = T[i, j, k] * A[k, r]\n"
        "  - C[i, r] = S[i, j, r] * B[j, r]\n";

    Xoshiro256 rng(77);
    std::vector<std::pair<std::vector<Coord>, double>> coo;
    for (Coord i = 0; i < 5; ++i)
        for (Coord j = 0; j < 4; ++j)
            for (Coord k = 0; k < 6; ++k)
                if (rng.uniform() < 0.4)
                    coo.push_back({{i, j, k}, 1.0 + rng.uniform()});
    const Tensor t =
        Tensor::fromCoo("T", {"I", "J", "K"}, {5, 4, 6}, coo);
    coo.clear();
    for (Coord k = 0; k < 6; ++k)
        for (Coord r = 0; r < 3; ++r)
            if (rng.uniform() < 0.8)
                coo.push_back({{k, r}, 1.0 + rng.uniform()});
    const Tensor a = Tensor::fromCoo("A", {"K", "R"}, {6, 3}, coo);
    coo.clear();
    for (Coord j = 0; j < 4; ++j)
        for (Coord r = 0; r < 3; ++r)
            if (rng.uniform() < 0.8)
                coo.push_back({{j, r}, 1.0 + rng.uniform()});
    const Tensor b = Tensor::fromCoo("B", {"J", "R"}, {4, 3}, coo);

    const Tensor c1 = runCascade(
        direct,
        {{"T", t.clone()}, {"A", a.clone()}, {"B", b.clone()}});
    const Tensor c2 = runCascade(
        factorized,
        {{"T", t.clone()}, {"A", a.clone()}, {"B", b.clone()}});
    EXPECT_TRUE(c1.equals(c2, 1e-9));
}

// ------------------------------------------ co-iteration strategies

Tensor
randomSparse(const std::string& name, const std::vector<std::string>& ids,
             Coord rows, Coord cols, double density, std::uint64_t seed)
{
    Xoshiro256 rng(seed);
    std::vector<std::pair<std::vector<Coord>, double>> coo;
    for (Coord r = 0; r < rows; ++r) {
        for (Coord c = 0; c < cols; ++c) {
            if (rng.uniform() < density)
                coo.push_back({{r, c}, 1.0 + rng.uniform()});
        }
    }
    return Tensor::fromCoo(name, ids, {rows, cols}, coo);
}

const char* kStrategyMatmul = "declaration:\n"
                              "  A: [K, M]\n"
                              "  B: [K, N]\n"
                              "  Z: [M, N]\n"
                              "expressions:\n"
                              "  - Z[m, n] = A[k, m] * B[k, n]\n";

/** Run @p plan with every loop forced to strategy @p s. */
Tensor
runForced(const ir::EinsumPlan& base, ir::CoiterStrategy s,
          exec::ExecutionStats& stats)
{
    ir::EinsumPlan plan = base;
    for (ir::LoopRank& lr : plan.loops) {
        if (!lr.isUpperPartition)
            lr.coiter = s;
    }
    trace::Observer obs;
    exec::Executor ex(plan, obs);
    Tensor out = ex.run();
    stats = ex.stats();
    return out;
}

/// Property: the three strategies are functionally interchangeable —
/// identical output tensors and identical ExecutionStats on random
/// sparse inputs, uniform or skewed.
class StrategyEquivalence : public ::testing::TestWithParam<int>
{
  protected:
    void
    check(const Tensor& a, const Tensor& b)
    {
        const auto es =
            einsum::EinsumSpec::parse(yaml::parse(kStrategyMatmul));
        std::map<std::string, Tensor> tensors{{"A", a.clone()},
                                              {"B", b.clone()}};
        const ir::EinsumPlan plan =
            ir::buildPlan(es.expressions[0], es, {}, tensors, {});

        exec::ExecutionStats s2f, sgal, sdense;
        const Tensor z2f =
            runForced(plan, ir::CoiterStrategy::TwoFinger, s2f);
        const Tensor zgal =
            runForced(plan, ir::CoiterStrategy::Gallop, sgal);
        const Tensor zdense =
            runForced(plan, ir::CoiterStrategy::DenseDrive, sdense);

        EXPECT_TRUE(zgal.equals(z2f, 1e-12))
            << "gallop:\n" << zgal.toString(8) << "\nvs two-finger\n"
            << z2f.toString(8);
        EXPECT_TRUE(zdense.equals(z2f, 1e-12))
            << "dense-drive:\n" << zdense.toString(8)
            << "\nvs two-finger\n" << z2f.toString(8);
        EXPECT_TRUE(sgal == s2f) << "gallop stats diverge";
        EXPECT_TRUE(sdense == s2f) << "dense-drive stats diverge";
    }
};

TEST_P(StrategyEquivalence, UniformOccupancy)
{
    const auto seed = static_cast<std::uint64_t>(GetParam());
    check(randomSparse("A", {"K", "M"}, 48, 30, 0.25, 900 + seed),
          randomSparse("B", {"K", "N"}, 48, 24, 0.3, 1900 + seed));
}

TEST_P(StrategyEquivalence, SkewedOccupancy)
{
    // One driver ~40x denser than the other: the gallop sweet spot.
    const auto seed = static_cast<std::uint64_t>(GetParam());
    check(randomSparse("A", {"K", "M"}, 128, 20, 0.85, 2900 + seed),
          randomSparse("B", {"K", "N"}, 128, 16, 0.02, 3900 + seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyEquivalence,
                         ::testing::Range(0, 6));

TEST(StrategyPlanning, GallopSelectedForSkewedDrivers)
{
    // Dense-rowed A against nearly-empty-rowed B: the K loop's
    // occupancy hints are skewed far past the threshold.
    const Tensor a = randomSparse("A", {"K", "M"}, 256, 20, 0.9, 41);
    const Tensor b = randomSparse("B", {"K", "N"}, 256, 24, 0.015, 42);
    const auto es =
        einsum::EinsumSpec::parse(yaml::parse(kStrategyMatmul));
    std::map<std::string, Tensor> tensors{{"A", a.clone()},
                                          {"B", b.clone()}};
    const ir::EinsumPlan plan =
        ir::buildPlan(es.expressions[0], es, {}, tensors, {});
    int gallops = 0;
    for (const ir::LoopRank& lr : plan.loops) {
        if (lr.coiter == ir::CoiterStrategy::Gallop) {
            ++gallops;
            EXPECT_GE(lr.driverSkew, 32.0) << lr.name;
        }
    }
    EXPECT_GE(gallops, 1) << plan.toString();
}

TEST(StrategyPlanning, UniformOccupancyStaysTwoFinger)
{
    const Tensor a = randomSparse("A", {"K", "M"}, 64, 20, 0.3, 43);
    const Tensor b = randomSparse("B", {"K", "N"}, 64, 24, 0.3, 44);
    const auto es =
        einsum::EinsumSpec::parse(yaml::parse(kStrategyMatmul));
    std::map<std::string, Tensor> tensors{{"A", a.clone()},
                                          {"B", b.clone()}};
    const ir::EinsumPlan plan =
        ir::buildPlan(es.expressions[0], es, {}, tensors, {});
    for (const ir::LoopRank& lr : plan.loops)
        EXPECT_EQ(lr.coiter, ir::CoiterStrategy::TwoFinger) << lr.name;
}

TEST(StrategyPlanning, DriverlessRankPlansDenseDrive)
{
    // Direct convolution: Q has no driving fiber, so the planner must
    // mark it DenseDrive.
    const char* einsum = "declaration:\n"
                         "  I: [W]\n"
                         "  F: [S]\n"
                         "  O: [Q]\n"
                         "expressions:\n"
                         "  - O[q] = I[q+s] * F[s]\n";
    Tensor i("I", {"W"}, {20});
    Tensor f("F", {"S"}, {4});
    for (Coord c = 0; c < 20; ++c) {
        const std::vector<Coord> p{c};
        i.set(p, 1.0);
        if (c < 4)
            f.set(p, 2.0);
    }
    const auto es = einsum::EinsumSpec::parse(yaml::parse(einsum));
    std::map<std::string, Tensor> tensors{{"I", i.clone()},
                                          {"F", f.clone()}};
    const ir::EinsumPlan plan =
        ir::buildPlan(es.expressions[0], es, {}, tensors, {});
    bool found_dense = false;
    for (const ir::LoopRank& lr : plan.loops) {
        if (lr.name == "Q") {
            EXPECT_EQ(lr.coiter, ir::CoiterStrategy::DenseDrive);
            found_dense = true;
        }
    }
    EXPECT_TRUE(found_dense);
}

// -------------------------------------------------- batched trace bus

/** Counts virtual calls across the Observer interface. */
class CountingObserver : public trace::Observer
{
  public:
    std::size_t batchCalls = 0;
    std::size_t recordsSeen = 0;
    std::size_t perEventCalls = 0;

    void
    onEventBatch(const trace::EventBatch& batch) override
    {
        ++batchCalls;
        recordsSeen += batch.events.size();
        trace::Observer::onEventBatch(batch); // replay to the methods
    }

    void
    onLoopEnter(std::size_t, ft::Coord) override
    {
        ++perEventCalls;
    }
    void
    onCoIterate(std::size_t, std::size_t, std::size_t, std::size_t,
                std::uint64_t) override
    {
        ++perEventCalls;
    }
    void
    onCoordScan(int, std::size_t, std::size_t, std::uint64_t) override
    {
        ++perEventCalls;
    }
    void
    onTensorAccess(int, const std::string&, std::size_t, ft::Coord,
                   const void*, const ft::Payload*, std::uint64_t) override
    {
        ++perEventCalls;
    }
    void
    onOutputWrite(const std::string&, std::size_t, ft::Coord,
                  std::uint64_t, bool, bool, std::uint64_t) override
    {
        ++perEventCalls;
    }
    void
    onCompute(char, std::uint64_t, std::size_t) override
    {
        ++perEventCalls;
    }
    void
    onSwizzle(const std::string&, std::size_t, std::size_t, bool) override
    {
        ++perEventCalls;
    }
    void
    onTensorCopy(const std::string&, const std::string&,
                 std::size_t) override
    {
        ++perEventCalls;
    }
};

TEST(TraceBus, BatchingCutsVirtualCallsTenfold)
{
    const Tensor a = randomSparse("A", {"K", "M"}, 64, 48, 0.3, 51);
    const Tensor b = randomSparse("B", {"K", "N"}, 64, 40, 0.3, 52);
    const auto es =
        einsum::EinsumSpec::parse(yaml::parse(kStrategyMatmul));
    std::map<std::string, Tensor> tensors{{"A", a.clone()},
                                          {"B", b.clone()}};
    const ir::EinsumPlan plan =
        ir::buildPlan(es.expressions[0], es, {}, tensors, {});

    CountingObserver counting;
    exec::Executor ex(plan, counting);
    ex.run();

    // The replay fires exactly one per-event call per record, so
    // perEventCalls is what the unbatched engine would have cost.
    EXPECT_EQ(counting.perEventCalls, counting.recordsSeen);
    EXPECT_GE(counting.perEventCalls, counting.batchCalls * 10)
        << counting.perEventCalls << " events in "
        << counting.batchCalls << " batches";
    EXPECT_EQ(ex.bus().eventCount(), counting.recordsSeen);
    EXPECT_EQ(ex.bus().batchCount(), counting.batchCalls);
}

/** Sums every numeric field seen through the streaming interface. */
struct SummingObserver : trace::Observer
{
    std::size_t loopEnters = 0;
    std::size_t steps = 0;
    std::size_t matches = 0;
    std::size_t scans = 0;
    std::size_t accesses = 0;
    std::size_t writes = 0;
    std::size_t computes = 0;

    void
    onLoopEnter(std::size_t, ft::Coord) override
    {
        ++loopEnters;
    }
    void
    onCoIterate(std::size_t, std::size_t s, std::size_t m, std::size_t,
                std::uint64_t) override
    {
        steps += s;
        matches += m;
    }
    void
    onCoordScan(int, std::size_t, std::size_t count, std::uint64_t) override
    {
        scans += count;
    }
    void
    onTensorAccess(int, const std::string&, std::size_t, ft::Coord,
                   const void*, const ft::Payload*, std::uint64_t) override
    {
        ++accesses;
    }
    void
    onOutputWrite(const std::string&, std::size_t, ft::Coord,
                  std::uint64_t, bool, bool, std::uint64_t) override
    {
        ++writes;
    }
    void
    onCompute(char, std::uint64_t, std::size_t count) override
    {
        computes += count;
    }
};

TEST(TraceBus, ReplayedCountsMatchBatchConsumption)
{
    const Tensor a = randomSparse("A", {"K", "M"}, 40, 30, 0.35, 61);
    const Tensor b = randomSparse("B", {"K", "N"}, 40, 26, 0.3, 62);
    const auto es =
        einsum::EinsumSpec::parse(yaml::parse(kStrategyMatmul));
    std::map<std::string, Tensor> tensors{{"A", a.clone()},
                                          {"B", b.clone()}};
    const ir::EinsumPlan plan =
        ir::buildPlan(es.expressions[0], es, {}, tensors, {});

    // Default replay path.
    SummingObserver replayed;
    exec::Executor ex1(plan, replayed);
    const Tensor z1 = ex1.run();

    // Batch-consuming path: accumulate from the records directly.
    struct BatchSummer : SummingObserver
    {
        void
        onEventBatch(const trace::EventBatch& batch) override
        {
            using trace::Event;
            for (const Event& e : batch.events) {
                switch (e.kind) {
                  case Event::Kind::LoopEnter:
                    ++loopEnters;
                    break;
                  case Event::Kind::CoIterate:
                    steps += e.a;
                    matches += e.b;
                    break;
                  case Event::Kind::CoordScan:
                    scans += e.a;
                    break;
                  case Event::Kind::TensorAccess:
                    ++accesses;
                    break;
                  case Event::Kind::OutputWrite:
                    ++writes;
                    break;
                  case Event::Kind::Compute:
                    computes += e.a;
                    break;
                  default:
                    break;
                }
            }
        }
    } batched;
    exec::Executor ex2(plan, batched);
    const Tensor z2 = ex2.run();

    EXPECT_TRUE(z1.equals(z2, 1e-12));
    EXPECT_EQ(replayed.loopEnters, batched.loopEnters);
    EXPECT_EQ(replayed.steps, batched.steps);
    EXPECT_EQ(replayed.matches, batched.matches);
    EXPECT_EQ(replayed.scans, batched.scans);
    EXPECT_EQ(replayed.accesses, batched.accesses);
    EXPECT_EQ(replayed.writes, batched.writes);
    EXPECT_EQ(replayed.computes, batched.computes);
}

} // namespace
} // namespace teaal
