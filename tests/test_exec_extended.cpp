/**
 * @file
 * Extended executor coverage: the Eyeriss 4-D convolution Einsum
 * (two affine index expressions), dot products (scalar output),
 * the Cooley-Tukey FFT-step cascade (constant indices), and the
 * factorized-MTTKRP equivalence (Table 2 rows executed, not just
 * parsed).
 */
#include <gtest/gtest.h>

#include <map>

#include "exec/executor.hpp"
#include "ir/plan.hpp"
#include "util/random.hpp"
#include "yaml/yaml.hpp"

namespace teaal
{
namespace
{

using ft::Coord;
using ft::Tensor;

Tensor
runCascade(const std::string& einsum_yaml,
           std::map<std::string, Tensor> tensors)
{
    const auto spec =
        einsum::EinsumSpec::parse(yaml::parse(einsum_yaml));
    trace::Observer obs;
    std::vector<std::string> produced;
    Tensor result;
    for (const auto& e : spec.expressions) {
        const auto plan = ir::buildPlan(e, spec, {}, tensors, produced);
        exec::Executor ex(plan, obs);
        result = ex.run();
        tensors.insert_or_assign(e.output.name, result.clone());
        produced.push_back(e.output.name);
    }
    return result;
}

TEST(ExecExtended, EyerissConvMatchesBruteForce)
{
    // O[b,m,p,q] = I[b,c,p+r,q+s] * F[c,m,r,s] (Table 2, Eyeriss).
    const char* einsum =
        "declaration:\n"
        "  I: [B, C, H, W]\n"
        "  F: [C, M, R, S]\n"
        "  O: [B, M, P, Q]\n"
        "expressions:\n"
        "  - O[b, m, p, q] = I[b, c, p+r, q+s] * F[c, m, r, s]\n";
    const Coord B = 2, C = 3, H = 6, W = 7, M = 2, R = 2, S = 3;
    const Coord P = H - R + 1, Q = W - S + 1;

    Xoshiro256 rng(55);
    Tensor input("I", {"B", "C", "H", "W"}, {B, C, H, W});
    Tensor filter("F", {"C", "M", "R", "S"}, {C, M, R, S});
    for (Coord b = 0; b < B; ++b)
        for (Coord c = 0; c < C; ++c)
            for (Coord h = 0; h < H; ++h)
                for (Coord w = 0; w < W; ++w)
                    if (rng.uniform() < 0.5) {
                        const std::vector<Coord> p{b, c, h, w};
                        input.set(p, 1.0 + rng.uniform());
                    }
    for (Coord c = 0; c < C; ++c)
        for (Coord m = 0; m < M; ++m)
            for (Coord r = 0; r < R; ++r)
                for (Coord s = 0; s < S; ++s)
                    if (rng.uniform() < 0.8) {
                        const std::vector<Coord> p{c, m, r, s};
                        filter.set(p, 0.5 + rng.uniform());
                    }

    const Tensor o = runCascade(
        einsum, {{"I", input.clone()}, {"F", filter.clone()}});

    for (Coord b = 0; b < B; ++b) {
        for (Coord m = 0; m < M; ++m) {
            for (Coord p = 0; p < P; ++p) {
                for (Coord q = 0; q < Q; ++q) {
                    double ref = 0;
                    for (Coord c = 0; c < C; ++c)
                        for (Coord r = 0; r < R; ++r)
                            for (Coord s = 0; s < S; ++s) {
                                const std::vector<Coord> pi{b, c, p + r,
                                                            q + s};
                                const std::vector<Coord> pf{c, m, r, s};
                                ref += input.at(pi) * filter.at(pf);
                            }
                    const std::vector<Coord> po{b, m, p, q};
                    ASSERT_NEAR(o.at(po), ref, 1e-9)
                        << b << "," << m << "," << p << "," << q;
                }
            }
        }
    }
}

TEST(ExecExtended, DotProductScalarOutput)
{
    const char* einsum = "declaration:\n"
                         "  A: [K]\n"
                         "  B: [K]\n"
                         "  Z: []\n"
                         "expressions:\n"
                         "  - Z[] = A[k] * B[k]\n";
    Tensor a("A", {"K"}, {10});
    Tensor b("B", {"K"}, {10});
    double ref = 0;
    for (Coord k = 0; k < 10; k += 2) {
        const std::vector<Coord> p{k};
        a.set(p, static_cast<double>(k + 1));
        b.set(p, 2.0);
        ref += static_cast<double>(k + 1) * 2.0;
    }
    const Tensor z =
        runCascade(einsum, {{"A", a.clone()}, {"B", b.clone()}});
    // Scalar results live at coordinate 0 of the internal rank.
    ASSERT_EQ(z.numRanks(), 1u);
    const std::vector<Coord> origin{0};
    EXPECT_DOUBLE_EQ(z.at(origin), ref);
}

TEST(ExecExtended, FftStepCascadeExecutes)
{
    // The Cooley-Tukey step of Table 2: constant indices select
    // twiddle planes; the final outputs are sum and difference.
    const char* einsum =
        "declaration:\n"
        "  P: [Z, K0, N1, W]\n"
        "  X: [N1, Z]\n"
        "  E0: [K0]\n"
        "  O0: [K0]\n"
        "  T: [K0]\n"
        "  Y0: [K0]\n"
        "  Y1: [K0]\n"
        "expressions:\n"
        "  - E0[k0] = P[0, k0, n1, 0] * X[n1, 0]\n"
        "  - O0[k0] = P[0, k0, n1, 0] * X[n1, 1]\n"
        "  - T[k0] = P[0, k0, 0, 1] * O0[k0]\n"
        "  - Y0[k0] = E0[k0] + T[k0]\n"
        "  - Y1[k0] = E0[k0] - T[k0]\n";

    const Coord K0 = 4, N1 = 2;
    Tensor p("P", {"Z", "K0", "N1", "W"}, {1, K0, N1, 2});
    Tensor x("X", {"N1", "Z"}, {N1, 2});
    Xoshiro256 rng(66);
    for (Coord k = 0; k < K0; ++k) {
        for (Coord n = 0; n < N1; ++n) {
            const std::vector<Coord> pp{0, k, n, 0};
            p.set(pp, 1.0 + rng.uniform());
        }
        const std::vector<Coord> tw{0, k, 0, 1};
        p.set(tw, 0.5 + rng.uniform()); // twiddle for T
    }
    for (Coord n = 0; n < N1; ++n) {
        const std::vector<Coord> even{n, 0}, odd{n, 1};
        x.set(even, 1.0 + rng.uniform());
        x.set(odd, 1.0 + rng.uniform());
    }

    const auto spec = einsum::EinsumSpec::parse(yaml::parse(einsum));
    trace::Observer obs;
    std::map<std::string, Tensor> tensors{{"P", p.clone()},
                                          {"X", x.clone()}};
    std::vector<std::string> produced;
    for (const auto& e : spec.expressions) {
        const auto plan = ir::buildPlan(e, spec, {}, tensors, produced);
        exec::Executor ex(plan, obs);
        tensors.insert_or_assign(e.output.name, ex.run());
        produced.push_back(e.output.name);
    }

    for (Coord k = 0; k < K0; ++k) {
        double e0 = 0, o0 = 0;
        for (Coord n = 0; n < N1; ++n) {
            const std::vector<Coord> pp{0, k, n, 0};
            const std::vector<Coord> xe{n, 0}, xo{n, 1};
            e0 += p.at(pp) * x.at(xe);
            o0 += p.at(pp) * x.at(xo);
        }
        const std::vector<Coord> tw{0, k, 0, 1};
        const double t = p.at(tw) * o0;
        const std::vector<Coord> pk{k};
        EXPECT_NEAR(tensors.at("Y0").at(pk), e0 + t, 1e-9);
        EXPECT_NEAR(tensors.at("Y1").at(pk), e0 - t, 1e-9);
    }
}

TEST(ExecExtended, FactorizedMttkrpEqualsDirect)
{
    // Table 2: factorized MTTKRP must equal the three-operand form.
    const char* direct =
        "declaration:\n"
        "  T: [I, J, K]\n  A: [K, R]\n  B: [J, R]\n  C: [I, R]\n"
        "expressions:\n"
        "  - C[i, r] = T[i, j, k] * B[j, r] * A[k, r]\n";
    const char* factorized =
        "declaration:\n"
        "  T: [I, J, K]\n  A: [K, R]\n  B: [J, R]\n"
        "  S: [I, J, R]\n  C: [I, R]\n"
        "expressions:\n"
        "  - S[i, j, r] = T[i, j, k] * A[k, r]\n"
        "  - C[i, r] = S[i, j, r] * B[j, r]\n";

    Xoshiro256 rng(77);
    std::vector<std::pair<std::vector<Coord>, double>> coo;
    for (Coord i = 0; i < 5; ++i)
        for (Coord j = 0; j < 4; ++j)
            for (Coord k = 0; k < 6; ++k)
                if (rng.uniform() < 0.4)
                    coo.push_back({{i, j, k}, 1.0 + rng.uniform()});
    const Tensor t =
        Tensor::fromCoo("T", {"I", "J", "K"}, {5, 4, 6}, coo);
    coo.clear();
    for (Coord k = 0; k < 6; ++k)
        for (Coord r = 0; r < 3; ++r)
            if (rng.uniform() < 0.8)
                coo.push_back({{k, r}, 1.0 + rng.uniform()});
    const Tensor a = Tensor::fromCoo("A", {"K", "R"}, {6, 3}, coo);
    coo.clear();
    for (Coord j = 0; j < 4; ++j)
        for (Coord r = 0; r < 3; ++r)
            if (rng.uniform() < 0.8)
                coo.push_back({{j, r}, 1.0 + rng.uniform()});
    const Tensor b = Tensor::fromCoo("B", {"J", "R"}, {4, 3}, coo);

    const Tensor c1 = runCascade(
        direct,
        {{"T", t.clone()}, {"A", a.clone()}, {"B", b.clone()}});
    const Tensor c2 = runCascade(
        factorized,
        {{"T", t.clone()}, {"A", a.clone()}, {"B", b.clone()}});
    EXPECT_TRUE(c1.equals(c2, 1e-9));
}

} // namespace
} // namespace teaal
