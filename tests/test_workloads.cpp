/**
 * @file
 * Tests for the Table 4 dataset registry and the synthetic workload
 * generators (shape/NNZ fidelity, determinism, structure classes).
 */
#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"
#include "workloads/datasets.hpp"

namespace teaal::workloads
{
namespace
{

TEST(Datasets, Table4HasAllEightRows)
{
    const auto& rows = table4();
    ASSERT_EQ(rows.size(), 8u);
    const std::vector<std::string> keys{"wi", "p2", "ca", "po",
                                        "em", "fl", "wk", "lj"};
    for (std::size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(rows[i].key, keys[i]);
    EXPECT_EQ(dataset("wi").name, "wiki-Vote");
    EXPECT_EQ(dataset("lj").nnz, 69000000u);
    EXPECT_THROW(dataset("zz"), SpecError);
}

TEST(Generators, UniformMatrixHitsNnzAndShape)
{
    const auto t = uniformMatrix("A", 100, 80, 500, 42);
    EXPECT_EQ(t.nnz(), 500u);
    EXPECT_EQ(t.rank(0).shape, 100);
    EXPECT_EQ(t.rank(1).shape, 80);
    t.forEachLeaf([](std::span<const ft::Coord> p, double v) {
        EXPECT_GE(p[0], 0);
        EXPECT_LT(p[0], 100);
        EXPECT_GE(p[1], 0);
        EXPECT_LT(p[1], 80);
        EXPECT_GT(v, 0);
    });
}

TEST(Generators, UniformMatrixIsDeterministic)
{
    const auto a = uniformMatrix("A", 64, 64, 300, 7);
    const auto b = uniformMatrix("A", 64, 64, 300, 7);
    EXPECT_TRUE(a.equals(b));
    const auto c = uniformMatrix("A", 64, 64, 300, 8);
    EXPECT_FALSE(a.equals(c));
}

TEST(Generators, CustomRankIds)
{
    const auto t = uniformMatrix("B", 10, 12, 30, 1, {"K", "N"});
    EXPECT_EQ(t.rankIds(), (std::vector<std::string>{"K", "N"}));
}

TEST(Generators, PowerLawIsSkewed)
{
    const auto t = powerLawMatrix("A", 2000, 2000, 20000, 3);
    EXPECT_NEAR(static_cast<double>(t.nnz()), 20000, 600);
    // Row occupancies: the top-40 rows should hold far more than 2%
    // of the nonzeros (heavy tail).
    std::vector<std::size_t> degrees;
    const ft::Fiber& root = *t.root();
    for (std::size_t i = 0; i < root.size(); ++i)
        degrees.push_back(root.payloadAt(i).fiber()->size());
    std::sort(degrees.rbegin(), degrees.rend());
    std::size_t top = 0;
    for (std::size_t i = 0; i < std::min<std::size_t>(40, degrees.size());
         ++i)
        top += degrees[i];
    EXPECT_GT(top, t.nnz() / 10);
}

TEST(Generators, BandedStaysNearDiagonal)
{
    const auto t = bandedMatrix("A", 500, 500, 5000, 4);
    EXPECT_EQ(t.nnz(), 5000u);
    const auto band = static_cast<ft::Coord>(3 * (5000 / 500) + 1);
    t.forEachLeaf([&](std::span<const ft::Coord> p, double) {
        EXPECT_LE(std::abs(p[0] - p[1]), band);
    });
}

TEST(Generators, SynthesizeRespectsScale)
{
    const DatasetInfo& wi = dataset("wi");
    const auto full = synthesize(wi, "A", 1, 0.05);
    EXPECT_NEAR(static_cast<double>(full.rank(0).shape),
                static_cast<double>(wi.rows) * 0.05, 1.0);
    EXPECT_LE(full.nnz(),
              static_cast<std::size_t>(wi.nnz * 0.05 * 1.1));
}

TEST(Rmat, GraphShapeAndDeterminism)
{
    const Graph g = rmatGraph(1024, 8000, 9);
    EXPECT_EQ(g.vertices, 1024);
    EXPECT_EQ(g.offsets.size(), 1025u);
    EXPECT_EQ(g.offsets.back(), g.edges());
    EXPECT_GT(g.edges(), 7000u); // dedup loses a few
    for (std::uint32_t d : g.targets)
        EXPECT_LT(d, 1024u);
    const Graph g2 = rmatGraph(1024, 8000, 9);
    EXPECT_EQ(g.targets, g2.targets);
}

TEST(Rmat, DegreeSkew)
{
    const Graph g = rmatGraph(4096, 40000, 10);
    std::vector<std::size_t> degrees;
    for (std::size_t v = 0; v < 4096; ++v)
        degrees.push_back(g.offsets[v + 1] - g.offsets[v]);
    std::sort(degrees.rbegin(), degrees.rend());
    // Top 1% of vertices should own >10% of the edges (power law).
    std::size_t top = 0;
    for (std::size_t i = 0; i < 41; ++i)
        top += degrees[i];
    EXPECT_GT(top, g.edges() / 10);
}

TEST(Rmat, GraphToTensorTransposesToDestMajor)
{
    const Graph g = rmatGraph(64, 300, 11);
    const auto t = graphToTensor(g, "G");
    EXPECT_EQ(t.rankIds(), (std::vector<std::string>{"D", "S"}));
    EXPECT_EQ(t.nnz(), g.edges());
    // Every edge (s -> d) appears at G[d][s].
    for (ft::Coord s = 0; s < 64; ++s) {
        for (std::uint32_t e = g.offsets[static_cast<std::size_t>(s)];
             e < g.offsets[static_cast<std::size_t>(s) + 1]; ++e) {
            const std::vector<ft::Coord> p{g.targets[e], s};
            EXPECT_NE(t.at(p), 0.0);
        }
    }
}

TEST(Rmat, SelfLoopsExcluded)
{
    const Graph g = rmatGraph(256, 2000, 12);
    for (std::size_t v = 0; v < 256; ++v) {
        for (std::uint32_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e)
            EXPECT_NE(g.targets[e], static_cast<std::uint32_t>(v));
    }
}

} // namespace
} // namespace teaal::workloads
