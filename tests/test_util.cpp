/**
 * @file
 * Unit tests for the util subsystem: strings, errors, RNG, stats,
 * tables.
 */
#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

namespace teaal
{
namespace
{

TEST(StringUtils, TrimRemovesSurroundingWhitespace)
{
    EXPECT_EQ(trim("  a b  "), "a b");
    EXPECT_EQ(trim("\t x\n"), "x");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("abc"), "abc");
}

TEST(StringUtils, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("uniform_shape(4)", "uniform_"));
    EXPECT_FALSE(startsWith("ab", "abc"));
    EXPECT_TRUE(endsWith("A.256", ".256"));
    EXPECT_FALSE(endsWith("x", "xy"));
}

TEST(StringUtils, SplitKeepsEmptyFields)
{
    const auto fields = split("a,,b", ',');
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[1], "");
    EXPECT_EQ(fields[2], "b");
}

TEST(StringUtils, SplitTopLevelRespectsParens)
{
    const auto fields =
        splitTopLevel("uniform_occupancy(A.256), flatten(), x", ',');
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0], "uniform_occupancy(A.256)");
    EXPECT_EQ(fields[1], "flatten()");
    EXPECT_EQ(fields[2], "x");
}

TEST(StringUtils, SplitTopLevelRespectsBrackets)
{
    const auto fields = splitTopLevel("[a, b], c", ',');
    ASSERT_EQ(fields.size(), 2u);
    EXPECT_EQ(fields[0], "[a, b]");
    EXPECT_EQ(fields[1], "c");
}

TEST(StringUtils, JoinRoundTrips)
{
    EXPECT_EQ(join({"K", "M", "N"}, ", "), "K, M, N");
    EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtils, ParseLongAcceptsIntegers)
{
    EXPECT_EQ(parseLong("42", "test"), 42);
    EXPECT_EQ(parseLong(" -7 ", "test"), -7);
    EXPECT_THROW(parseLong("4x", "test"), SpecError);
    EXPECT_THROW(parseLong("", "test"), SpecError);
}

TEST(StringUtils, ParseDoubleAcceptsNumbers)
{
    EXPECT_DOUBLE_EQ(parseDouble("2.5", "test"), 2.5);
    EXPECT_DOUBLE_EQ(parseDouble("1e-3", "test"), 1e-3);
    EXPECT_THROW(parseDouble("abc", "test"), SpecError);
}

TEST(StringUtils, IsIntegerClassifies)
{
    EXPECT_TRUE(isInteger("128"));
    EXPECT_TRUE(isInteger("-3"));
    EXPECT_FALSE(isInteger("K1"));
    EXPECT_FALSE(isInteger("1.5"));
    EXPECT_FALSE(isInteger(""));
    EXPECT_FALSE(isInteger("-"));
}

TEST(Errors, SpecErrorCarriesMessage)
{
    try {
        specError("bad rank '", "K", "'");
        FAIL() << "expected throw";
    } catch (const SpecError& e) {
        EXPECT_NE(std::string(e.what()).find("bad rank 'K'"),
                  std::string::npos);
    }
}

TEST(Errors, AssertThrowsModelError)
{
    EXPECT_THROW(TEAAL_ASSERT(false, "context"), ModelError);
    EXPECT_NO_THROW(TEAAL_ASSERT(true, "context"));
}

TEST(Random, DeterministicAcrossInstances)
{
    Xoshiro256 a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Random, DifferentSeedsDiffer)
{
    Xoshiro256 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a() == b());
    EXPECT_LT(same, 4);
}

TEST(Random, BelowStaysInRange)
{
    Xoshiro256 rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.below(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    // All 10 residues should appear in 1000 draws.
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Random, UniformInUnitInterval)
{
    Xoshiro256 rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Stats, ArithMean)
{
    EXPECT_DOUBLE_EQ(arithMean({1, 2, 3}), 2.0);
    EXPECT_THROW(arithMean({}), ModelError);
}

TEST(Stats, GeoMean)
{
    EXPECT_NEAR(geoMean({1, 4}), 2.0, 1e-12);
    EXPECT_THROW(geoMean({1, -1}), ModelError);
}

TEST(Stats, MeanAbsRelError)
{
    EXPECT_NEAR(meanAbsRelErrorPct({110, 90}, {100, 100}), 10.0, 1e-12);
    EXPECT_THROW(meanAbsRelErrorPct({1}, {1, 2}), ModelError);
}

TEST(Table, RendersAlignedColumns)
{
    TextTable table("demo");
    table.setHeader({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22"});
    const std::string out = table.render();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("alpha | 1"), std::string::npos);
    EXPECT_NE(out.find("b     | 22"), std::string::npos);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

} // namespace
} // namespace teaal
