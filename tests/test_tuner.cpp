/**
 * @file
 * The two-speed mapping autotuner (tuner/): analytic ranking prunes,
 * trace simulation confirms. The contract under test:
 *
 *   - the true-best mapping (by exhaustive trace search) survives
 *     top-K pruning on the explorer's search space;
 *   - results are identical at any thread count (deterministic
 *     sharding + index tie-breaking);
 *   - estimate failures degrade candidates to the trace set instead
 *     of crashing — injected via the model.analytic.estimate
 *     failpoint — and an all-fail run becomes an exhaustive trace
 *     search that still finds the same winner.
 */
#include <gtest/gtest.h>

#include <set>

#include "tuner/tuner.hpp"
#include "util/failpoint.hpp"
#include "workloads/datasets.hpp"

namespace teaal
{
namespace
{

namespace fp = util::failpoint;

#ifdef TEAAL_FAILPOINTS_ENABLED
#define TEAAL_REQUIRE_SITES() ((void)0)
#else
#define TEAAL_REQUIRE_SITES()                                          \
    GTEST_SKIP()                                                       \
        << "failpoint sites not compiled (TEAAL_FAILPOINTS=OFF)"
#endif

class Tuner : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        a_ = workloads::uniformMatrix("A", 300, 280, 3000, 11,
                                      {"K", "M"});
        b_ = workloads::uniformMatrix("B", 300, 320, 3200, 12,
                                      {"K", "N"});
        workload_.add("A", a_).add("B", b_);
    }

    void
    TearDown() override
    {
        fp::clearAll();
    }

    ft::Tensor a_;
    ft::Tensor b_;
    compiler::Workload workload_;
};

TEST_F(Tuner, SearchSpaceEnumeratesAllAxes)
{
    const auto cands = tuner::spmspmSearchSpace();
    EXPECT_EQ(cands.size(), 36u); // 3 orders x 3 tiles x 2 x 2 formats

    std::set<std::string> labels;
    for (const auto& c : cands) {
        labels.insert(c.label);
        // Every candidate must be a complete, compilable spec.
        EXPECT_NO_THROW(compiler::compile(c.spec)) << c.label;
    }
    EXPECT_EQ(labels.size(), cands.size()); // no duplicate points
}

TEST_F(Tuner, TrueBestSurvivesTopKPruning)
{
    const auto cands = tuner::spmspmSearchSpace();

    tuner::TunerOptions full;
    full.topK = cands.size();
    full.threads = 4;
    const auto exact = tuner::tune(cands, workload_, full);
    EXPECT_EQ(exact.tracedCount, cands.size());

    tuner::TunerOptions pruned;
    pruned.topK = 4;
    pruned.threads = 4;
    const auto fast = tuner::tune(cands, workload_, pruned);
    EXPECT_EQ(fast.tracedCount, 4u);
    EXPECT_EQ(fast.estimateFailures, 0u);
    EXPECT_TRUE(fast.analyticUsed);

    // The acceptance bar: pruning must not lose the true winner.
    EXPECT_EQ(fast.bestIndex, exact.bestIndex)
        << "pruned best " << fast.best().label << " vs exhaustive "
        << exact.best().label;

    // The ranking covers every candidate, each exactly once.
    std::set<std::size_t> seen;
    for (const auto& rc : fast.ranking)
        seen.insert(rc.index);
    EXPECT_EQ(seen.size(), cands.size());
}

TEST_F(Tuner, DeterministicAcrossThreadCounts)
{
    const auto cands = tuner::spmspmSearchSpace();

    tuner::TunerOptions serial;
    serial.topK = 4;
    serial.threads = 1;
    const auto one = tuner::tune(cands, workload_, serial);

    tuner::TunerOptions wide;
    wide.topK = 4;
    wide.threads = 4;
    const auto four = tuner::tune(cands, workload_, wide);

    ASSERT_EQ(one.ranking.size(), four.ranking.size());
    for (std::size_t i = 0; i < one.ranking.size(); ++i) {
        const auto& l = one.ranking[i];
        const auto& r = four.ranking[i];
        EXPECT_EQ(l.index, r.index) << "rank " << i;
        EXPECT_EQ(l.label, r.label);
        EXPECT_EQ(l.traced, r.traced);
        EXPECT_EQ(l.estimateFailed, r.estimateFailed);
        // Per-candidate work is identical serial code either way, so
        // the numbers match exactly, not approximately.
        EXPECT_EQ(l.analyticSeconds, r.analyticSeconds) << l.label;
        if (l.traced)
            EXPECT_EQ(l.traceSeconds, r.traceSeconds) << l.label;
    }
    EXPECT_EQ(one.bestIndex, four.bestIndex);
    EXPECT_EQ(one.tracedCount, four.tracedCount);
}

TEST_F(Tuner, AllEstimatesFailingDegradesToExhaustiveTrace)
{
    TEAAL_REQUIRE_SITES();

    // A reduced space keeps the forced-exhaustive run cheap.
    tuner::SearchSpaceOptions axes;
    axes.loopOrders = {"gustavson", "outer"};
    axes.mTiles = {16, 64};
    const auto cands = tuner::spmspmSearchSpace(axes);

    tuner::TunerOptions opts;
    opts.topK = 2;
    opts.threads = 2;
    const auto healthy = tuner::tune(cands, workload_, opts);

    fp::setFromSpec("model.analytic.estimate",
                    "error(analytic tier down)");
    const auto degraded = tuner::tune(cands, workload_, opts);

    EXPECT_FALSE(degraded.analyticUsed);
    EXPECT_EQ(degraded.estimateFailures, cands.size());
    EXPECT_EQ(degraded.tracedCount, cands.size()); // exhaustive
    for (const auto& rc : degraded.ranking) {
        EXPECT_TRUE(rc.estimateFailed);
        EXPECT_TRUE(rc.traced);
    }
    // Trace-only ranking still finds the same winner.
    EXPECT_EQ(degraded.bestIndex, healthy.bestIndex);
    EXPECT_EQ(degraded.best().traceSeconds,
              healthy.best().traceSeconds);
}

TEST_F(Tuner, PartialEstimateFailureJoinsTraceSet)
{
    TEAAL_REQUIRE_SITES();

    tuner::SearchSpaceOptions axes;
    axes.loopOrders = {"gustavson", "inner"};
    axes.mTiles = {16};
    const auto cands = tuner::spmspmSearchSpace(axes);
    ASSERT_EQ(cands.size(), 8u);

    // Serial phase 1 visits candidates in index order, so *3 fails
    // exactly candidates 0..2.
    fp::setFromSpec("model.analytic.estimate", "error(flaky)*3");
    tuner::TunerOptions opts;
    opts.topK = 2;
    opts.threads = 1;
    const auto res = tuner::tune(cands, workload_, opts);

    EXPECT_TRUE(res.analyticUsed);
    EXPECT_EQ(res.estimateFailures, 3u);
    EXPECT_EQ(res.tracedCount, 5u); // top-2 + the 3 failures

    // Failures rank after every successful estimate, in index order.
    ASSERT_EQ(res.ranking.size(), 8u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_FALSE(res.ranking[i].estimateFailed) << i;
    EXPECT_EQ(res.ranking[5].index, 0u);
    EXPECT_EQ(res.ranking[6].index, 1u);
    EXPECT_EQ(res.ranking[7].index, 2u);
}

} // namespace
} // namespace teaal
