/**
 * @file
 * Tests for Matrix Market I/O (the path for running the models on the
 * real Table 4 matrices when available).
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "util/error.hpp"
#include "workloads/mtx.hpp"
#include "workloads/datasets.hpp"

namespace teaal::workloads
{
namespace
{

TEST(MatrixMarket, ParseGeneralReal)
{
    const char* text = "%%MatrixMarket matrix coordinate real general\n"
                       "% a comment\n"
                       "3 4 3\n"
                       "1 1 2.5\n"
                       "2 3 -1.0\n"
                       "3 4 7\n";
    const auto t = parseMatrixMarket(text, "A");
    EXPECT_EQ(t.rank(0).shape, 3);
    EXPECT_EQ(t.rank(1).shape, 4);
    EXPECT_EQ(t.nnz(), 3u);
    const std::vector<ft::Coord> p{1, 2};
    EXPECT_DOUBLE_EQ(t.at(p), -1.0);
}

TEST(MatrixMarket, PatternGetsUnitValues)
{
    const char* text =
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 2\n"
        "1 2\n"
        "2 1\n";
    const auto t = parseMatrixMarket(text, "A");
    const std::vector<ft::Coord> p{0, 1};
    EXPECT_DOUBLE_EQ(t.at(p), 1.0);
    EXPECT_EQ(t.nnz(), 2u);
}

TEST(MatrixMarket, SymmetricExpands)
{
    const char* text =
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 2\n"
        "2 1 5.0\n"
        "3 3 1.5\n";
    const auto t = parseMatrixMarket(text, "A");
    EXPECT_EQ(t.nnz(), 3u); // off-diagonal mirrored, diagonal not
    const std::vector<ft::Coord> a{1, 0}, b{0, 1};
    EXPECT_DOUBLE_EQ(t.at(a), 5.0);
    EXPECT_DOUBLE_EQ(t.at(b), 5.0);
}

TEST(MatrixMarket, RejectsBadInput)
{
    EXPECT_THROW(parseMatrixMarket("", "A"), SpecError);
    EXPECT_THROW(parseMatrixMarket("%%MatrixMarket matrix array\n1 1\n",
                                   "A"),
                 SpecError);
    EXPECT_THROW(parseMatrixMarket(
                     "%%MatrixMarket matrix coordinate real general\n"
                     "2 2 1\n"
                     "5 1 1.0\n",
                     "A"),
                 SpecError);
    EXPECT_THROW(parseMatrixMarket(
                     "%%MatrixMarket matrix coordinate real general\n"
                     "2 2 2\n"
                     "1 1 1.0\n",
                     "A"),
                 SpecError);
}

TEST(MatrixMarket, RoundTripThroughText)
{
    const auto t = uniformMatrix("A", 30, 20, 80, 9);
    const auto again = parseMatrixMarket(renderMatrixMarket(t), "A");
    EXPECT_TRUE(again.equals(t, 1e-9));
}

TEST(MatrixMarket, RoundTripThroughFile)
{
    const auto t = uniformMatrix("A", 16, 16, 40, 10);
    const std::string path = "/tmp/teaal_mtx_test.mtx";
    writeMatrixMarket(path, t);
    const auto again = readMatrixMarket(path, "A", {"K", "M"});
    EXPECT_TRUE(again.equals(t, 1e-9));
    std::remove(path.c_str());
    EXPECT_THROW(readMatrixMarket("/nonexistent/file.mtx", "A"),
                 SpecError);
}

} // namespace
} // namespace teaal::workloads
