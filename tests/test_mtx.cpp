/**
 * @file
 * Tests for Matrix Market I/O (the path for running the models on the
 * real Table 4 matrices when available).
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "util/diagnostic.hpp"
#include "util/error.hpp"
#include "workloads/mtx.hpp"
#include "workloads/datasets.hpp"

namespace teaal::workloads
{
namespace
{

TEST(MatrixMarket, ParseGeneralReal)
{
    const char* text = "%%MatrixMarket matrix coordinate real general\n"
                       "% a comment\n"
                       "3 4 3\n"
                       "1 1 2.5\n"
                       "2 3 -1.0\n"
                       "3 4 7\n";
    const auto t = parseMatrixMarket(text, "A");
    EXPECT_EQ(t.rank(0).shape, 3);
    EXPECT_EQ(t.rank(1).shape, 4);
    EXPECT_EQ(t.nnz(), 3u);
    const std::vector<ft::Coord> p{1, 2};
    EXPECT_DOUBLE_EQ(t.at(p), -1.0);
}

TEST(MatrixMarket, PatternGetsUnitValues)
{
    const char* text =
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 2\n"
        "1 2\n"
        "2 1\n";
    const auto t = parseMatrixMarket(text, "A");
    const std::vector<ft::Coord> p{0, 1};
    EXPECT_DOUBLE_EQ(t.at(p), 1.0);
    EXPECT_EQ(t.nnz(), 2u);
}

TEST(MatrixMarket, SymmetricExpands)
{
    const char* text =
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 2\n"
        "2 1 5.0\n"
        "3 3 1.5\n";
    const auto t = parseMatrixMarket(text, "A");
    EXPECT_EQ(t.nnz(), 3u); // off-diagonal mirrored, diagonal not
    const std::vector<ft::Coord> a{1, 0}, b{0, 1};
    EXPECT_DOUBLE_EQ(t.at(a), 5.0);
    EXPECT_DOUBLE_EQ(t.at(b), 5.0);
}

TEST(MatrixMarket, RejectsBadInput)
{
    EXPECT_THROW(parseMatrixMarket("", "A"), SpecError);
    EXPECT_THROW(parseMatrixMarket("%%MatrixMarket matrix array\n1 1\n",
                                   "A"),
                 SpecError);
    EXPECT_THROW(parseMatrixMarket(
                     "%%MatrixMarket matrix coordinate real general\n"
                     "2 2 1\n"
                     "5 1 1.0\n",
                     "A"),
                 SpecError);
    EXPECT_THROW(parseMatrixMarket(
                     "%%MatrixMarket matrix coordinate real general\n"
                     "2 2 2\n"
                     "1 1 1.0\n",
                     "A"),
                 SpecError);
}

/**
 * Table-driven hardening pass: every class of malformed input —
 * truncation, non-numeric fields, out-of-range indices, duplicate
 * entries, bad field counts — must surface as a structured
 * DiagnosticError (section "workload", key "mtx") with a diagnosable
 * message, from BOTH the pointer and the packed parser, and never
 * crash.
 */
TEST(MatrixMarket, MalformedInputsAreStructuredDiagnostics)
{
    struct Case
    {
        const char* what;
        const char* text;
        const char* expect; ///< required message fragment
    };
    const Case cases[] = {
        {"truncated entry stream",
         "%%MatrixMarket matrix coordinate real general\n"
         "3 3 5\n"
         "1 1 1.0\n",
         "truncated"},
        {"ends before the size line",
         "%%MatrixMarket matrix coordinate real general\n"
         "% only comments\n",
         "ends before the size line"},
        {"size line with two fields",
         "%%MatrixMarket matrix coordinate real general\n"
         "3 3\n",
         "bad size line"},
        {"non-numeric size field",
         "%%MatrixMarket matrix coordinate real general\n"
         "3 x 1\n"
         "1 1 1.0\n",
         "non-numeric"},
        {"negative dimension",
         "%%MatrixMarket matrix coordinate real general\n"
         "-3 3 1\n"
         "1 1 1.0\n",
         "negative dimension"},
        {"non-numeric row index",
         "%%MatrixMarket matrix coordinate real general\n"
         "2 2 1\n"
         "1x 1 1.0\n",
         "non-numeric row index"},
        {"non-numeric value",
         "%%MatrixMarket matrix coordinate real general\n"
         "2 2 1\n"
         "1 1 abc\n",
         "non-numeric value"},
        {"partially numeric value",
         "%%MatrixMarket matrix coordinate real general\n"
         "2 2 1\n"
         "1 1 1.5x\n",
         "non-numeric value"},
        {"row index past the declared shape",
         "%%MatrixMarket matrix coordinate real general\n"
         "2 2 1\n"
         "5 1 1.0\n",
         "out of range"},
        {"zero index (MatrixMarket is 1-based)",
         "%%MatrixMarket matrix coordinate real general\n"
         "2 2 1\n"
         "0 1 1.0\n",
         "out of range"},
        {"real entry missing its value",
         "%%MatrixMarket matrix coordinate real general\n"
         "2 2 1\n"
         "1 1\n",
         "bad entry"},
        {"pattern entry with a value",
         "%%MatrixMarket matrix coordinate pattern general\n"
         "2 2 1\n"
         "1 1 1.0\n",
         "bad entry"},
        {"duplicate coordinates",
         "%%MatrixMarket matrix coordinate real general\n"
         "2 2 2\n"
         "1 1 1.0\n"
         "1 1 2.0\n",
         "duplicate"},
        {"duplicate via symmetric mirroring",
         "%%MatrixMarket matrix coordinate real symmetric\n"
         "2 2 2\n"
         "2 1 5.0\n"
         "1 2 3.0\n",
         "duplicate"},
    };
    for (const Case& c : cases) {
        SCOPED_TRACE(c.what);
        for (const bool packed : {false, true}) {
            SCOPED_TRACE(packed ? "packed parser" : "pointer parser");
            try {
                if (packed)
                    parseMatrixMarketPacked(c.text, "A");
                else
                    parseMatrixMarket(c.text, "A");
                FAIL() << "expected DiagnosticError";
            } catch (const DiagnosticError& e) {
                EXPECT_EQ(e.diagnostic().section, "workload");
                EXPECT_EQ(e.diagnostic().key, "mtx");
                EXPECT_NE(e.diagnostic().message.find(c.expect),
                          std::string::npos)
                    << e.diagnostic().message;
            }
        }
    }
}

/** Entry-level diagnostics name the offending line number. */
TEST(MatrixMarket, DiagnosticsCarryLineNumbers)
{
    try {
        parseMatrixMarket("%%MatrixMarket matrix coordinate real "
                          "general\n"
                          "% comment\n"
                          "2 2 1\n"
                          "1 1 bogus\n",
                          "A");
        FAIL() << "expected DiagnosticError";
    } catch (const DiagnosticError& e) {
        EXPECT_NE(e.diagnostic().message.find("line 4"),
                  std::string::npos)
            << e.diagnostic().message;
    }
}

TEST(MatrixMarket, RoundTripThroughText)
{
    const auto t = uniformMatrix("A", 30, 20, 80, 9);
    const auto again = parseMatrixMarket(renderMatrixMarket(t), "A");
    EXPECT_TRUE(again.equals(t, 1e-9));
}

TEST(MatrixMarket, RoundTripThroughFile)
{
    const auto t = uniformMatrix("A", 16, 16, 40, 10);
    const std::string path = "/tmp/teaal_mtx_test.mtx";
    writeMatrixMarket(path, t);
    const auto again = readMatrixMarket(path, "A", {"K", "M"});
    EXPECT_TRUE(again.equals(t, 1e-9));
    std::remove(path.c_str());
    EXPECT_THROW(readMatrixMarket("/nonexistent/file.mtx", "A"),
                 SpecError);
}

TEST(MatrixMarketPacked, StreamsIntoPackedCsrWithoutFibers)
{
    const auto t = uniformMatrix("A", 40, 30, 200, 11);
    const std::string text = renderMatrixMarket(t);

    const std::uint64_t fibers_before = ft::Fiber::constructionCount();
    const auto packed = parseMatrixMarketPacked(text, "A");
    // The streaming path builds packed buffers only — not one pointer
    // fiber, regardless of matrix size.
    EXPECT_EQ(ft::Fiber::constructionCount() - fibers_before, 0u);

    EXPECT_EQ(packed.nnz(), t.nnz());
    EXPECT_TRUE(packed.toTensor().equals(t, 1e-9));
    EXPECT_EQ(packed.rankIds(), t.rankIds());
}

TEST(MatrixMarketPacked, MatchesLegacyParserOnEveryVariant)
{
    const char* cases[] = {
        "%%MatrixMarket matrix coordinate real general\n"
        "3 4 3\n"
        "1 1 2.5\n"
        "2 3 -1.0\n"
        "3 4 7\n",
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 2\n"
        "1 2\n"
        "2 1\n",
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 2\n"
        "2 1 5.0\n"
        "3 3 1.5\n",
    };
    for (const char* text : cases) {
        const auto legacy = parseMatrixMarket(text, "A");
        const auto packed = parseMatrixMarketPacked(text, "A");
        EXPECT_TRUE(packed.toTensor().equals(legacy, 1e-12)) << text;
        EXPECT_EQ(packed.nnz(), legacy.nnz()) << text;
    }
}

TEST(MatrixMarketPacked, CarriesTheRequestedFormat)
{
    fmt::TensorFormat tf;
    fmt::RankFormat u;
    u.type = fmt::RankFormat::Type::U;
    tf.ranks["K"] = u;
    const char* text = "%%MatrixMarket matrix coordinate real general\n"
                       "3 4 2\n"
                       "1 1 1.0\n"
                       "3 4 2.0\n";
    const auto packed = parseMatrixMarketPacked(text, "A", {"K", "M"}, tf);
    EXPECT_EQ(packed.levelType(0), fmt::RankFormat::Type::U);
    EXPECT_EQ(packed.levelType(1), fmt::RankFormat::Type::C);
}

TEST(MatrixMarketPacked, ReadsFromFile)
{
    const auto t = uniformMatrix("A", 16, 16, 40, 12);
    const std::string path = "/tmp/teaal_mtx_packed_test.mtx";
    writeMatrixMarket(path, t);
    const auto packed = readMatrixMarketPacked(path, "A", {"K", "M"});
    EXPECT_TRUE(packed.toTensor().equals(t, 1e-9));
    std::remove(path.c_str());
    EXPECT_THROW(readMatrixMarketPacked("/nonexistent/file.mtx", "A"),
                 SpecError);
}

} // namespace
} // namespace teaal::workloads
