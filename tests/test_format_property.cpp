/**
 * @file
 * Property tests for the format/footprint model: invariants that must
 * hold for any tensor so traffic accounting is trustworthy.
 */
#include <gtest/gtest.h>

#include "format/format.hpp"
#include "workloads/datasets.hpp"

namespace teaal::fmt
{
namespace
{

class FormatProperty : public ::testing::TestWithParam<int>
{
  protected:
    ft::Tensor
    matrix() const
    {
        const auto seed = static_cast<std::uint64_t>(GetParam());
        return workloads::uniformMatrix("A", 200, 160,
                                        400 + 40 * GetParam(),
                                        seed + 500);
    }
};

TEST_P(FormatProperty, CompressedBitsScaleWithNnz)
{
    const auto t = matrix();
    TensorFormat tf; // all-compressed defaults
    const auto bits = tensorBits(tf, t);
    // Leaf elements cost cbits+pbits = 96; interior adds more.
    EXPECT_GE(bits, t.nnz() * 96);
    EXPECT_LE(bits, t.nnz() * 96 + (t.nnz() + 1) * 64);
}

TEST_P(FormatProperty, SubtreesSumToTensor)
{
    const auto t = matrix();
    TensorFormat tf;
    const auto& root = *t.root();
    std::uint64_t subtree_sum = 0;
    for (std::size_t pos = 0; pos < root.size(); ++pos) {
        subtree_sum +=
            subtreeBits(tf, t.rankIds(), root.payloadAt(pos), 1);
    }
    const RankFormat& rf = tf.rankFormat("K");
    const ft::Coord span = root.empty()
                               ? 0
                               : root.coordAt(root.size() - 1) -
                                     root.coordAt(0) + 1;
    const std::uint64_t root_bits =
        fiberBits(rf, root.size(), root.shape(), false, span);
    EXPECT_EQ(tensorBits(tf, t), root_bits + subtree_sum);
}

TEST_P(FormatProperty, UncompressedBoundedBySpan)
{
    const auto t = matrix();
    TensorFormat tf;
    RankFormat u;
    u.type = RankFormat::Type::U;
    u.pbits = 32;
    tf.ranks["K"] = u;
    tf.ranks["M"] = u;
    // With span capping, a U tensor never exceeds shape-based sizing.
    RankFormat u_nospan = u;
    const std::uint64_t with_span = tensorBits(tf, t);
    std::uint64_t shape_based =
        32ull * static_cast<std::uint64_t>(t.rank(0).shape);
    t.forEachLeaf([&](std::span<const ft::Coord>, double) {});
    // Row fibers: each at most 32 * M-shape bits.
    const auto& root = *t.root();
    shape_based +=
        32ull * static_cast<std::uint64_t>(t.rank(1).shape) *
        root.size();
    EXPECT_LE(with_span, shape_based);
    (void)u_nospan;
}

TEST_P(FormatProperty, BitmapBetweenCompressedAndUncompressed)
{
    const auto t = matrix();
    TensorFormat c_fmt;
    TensorFormat b_fmt;
    RankFormat b;
    b.type = RankFormat::Type::B;
    b.cbits = 1;
    b.pbits = 64;
    b_fmt.ranks["M"] = b; // leaf rank bitmap
    // Bitmap coordinates cost 1 bit/position instead of 32/elem:
    // cheaper than compressed for dense fibers, never free.
    const auto cb = tensorBits(c_fmt, t);
    const auto bb = tensorBits(b_fmt, t);
    EXPECT_GT(bb, t.nnz() * 64); // payloads still paid
    EXPECT_NE(cb, bb);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatProperty, ::testing::Range(0, 6));

} // namespace
} // namespace teaal::fmt
