/**
 * @file
 * Property tests for the format/footprint model: invariants that must
 * hold for any tensor so traffic accounting is trustworthy — and for
 * the packed physical storage (storage/packed.hpp), which must mirror
 * the pointer fibertree structurally and in every footprint it
 * derives from its buffers.
 */
#include <gtest/gtest.h>

#include "format/format.hpp"
#include "storage/packed.hpp"
#include "util/error.hpp"
#include "workloads/datasets.hpp"

namespace teaal::fmt
{
namespace
{

/** Exact structural equality: same coordinates per fiber, same
 *  nesting, same leaf values (representation round-trip fidelity —
 *  stricter than Tensor::equals, which ignores zero leaves). */
bool
sameStructure(const ft::Fiber& a, const ft::Fiber& b, std::size_t level,
              std::size_t depth)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t pos = 0; pos < a.size(); ++pos) {
        if (a.coordAt(pos) != b.coordAt(pos))
            return false;
        const ft::Payload& pa = a.payloadAt(pos);
        const ft::Payload& pb = b.payloadAt(pos);
        if (level + 1 == depth) {
            if (!pa.isValue() || !pb.isValue() ||
                pa.value() != pb.value())
                return false;
        } else {
            const bool ea = !pa.isFiber() || pa.fiber() == nullptr ||
                            pa.fiber()->empty();
            const bool eb = !pb.isFiber() || pb.fiber() == nullptr ||
                            pb.fiber()->empty();
            if (ea != eb)
                return false;
            if (!ea && !sameStructure(*pa.fiber(), *pb.fiber(),
                                      level + 1, depth))
                return false;
        }
    }
    return true;
}

bool
sameStructure(const ft::Tensor& a, const ft::Tensor& b)
{
    if (a.numRanks() != b.numRanks())
        return false;
    return sameStructure(*a.root(), *b.root(), 0, a.numRanks());
}

class FormatProperty : public ::testing::TestWithParam<int>
{
  protected:
    ft::Tensor
    matrix() const
    {
        const auto seed = static_cast<std::uint64_t>(GetParam());
        return workloads::uniformMatrix("A", 200, 160,
                                        400 + 40 * GetParam(),
                                        seed + 500);
    }
};

TEST_P(FormatProperty, CompressedBitsScaleWithNnz)
{
    const auto t = matrix();
    TensorFormat tf; // all-compressed defaults
    const auto bits = tensorBits(tf, t);
    // Leaf elements cost cbits+pbits = 96; interior adds more.
    EXPECT_GE(bits, t.nnz() * 96);
    EXPECT_LE(bits, t.nnz() * 96 + (t.nnz() + 1) * 64);
}

TEST_P(FormatProperty, SubtreesSumToTensor)
{
    const auto t = matrix();
    TensorFormat tf;
    const auto& root = *t.root();
    std::uint64_t subtree_sum = 0;
    for (std::size_t pos = 0; pos < root.size(); ++pos) {
        subtree_sum +=
            subtreeBits(tf, t.rankIds(), root.payloadAt(pos), 1);
    }
    const RankFormat& rf = tf.rankFormat("K");
    const ft::Coord span = root.empty()
                               ? 0
                               : root.coordAt(root.size() - 1) -
                                     root.coordAt(0) + 1;
    const std::uint64_t root_bits =
        fiberBits(rf, root.size(), root.shape(), false, span);
    EXPECT_EQ(tensorBits(tf, t), root_bits + subtree_sum);
}

TEST_P(FormatProperty, UncompressedBoundedBySpan)
{
    const auto t = matrix();
    TensorFormat tf;
    RankFormat u;
    u.type = RankFormat::Type::U;
    u.pbits = 32;
    tf.ranks["K"] = u;
    tf.ranks["M"] = u;
    // With span capping, a U tensor never exceeds shape-based sizing.
    RankFormat u_nospan = u;
    const std::uint64_t with_span = tensorBits(tf, t);
    std::uint64_t shape_based =
        32ull * static_cast<std::uint64_t>(t.rank(0).shape);
    t.forEachLeaf([&](std::span<const ft::Coord>, double) {});
    // Row fibers: each at most 32 * M-shape bits.
    const auto& root = *t.root();
    shape_based +=
        32ull * static_cast<std::uint64_t>(t.rank(1).shape) *
        root.size();
    EXPECT_LE(with_span, shape_based);
    (void)u_nospan;
}

TEST_P(FormatProperty, BitmapBetweenCompressedAndUncompressed)
{
    const auto t = matrix();
    TensorFormat c_fmt;
    TensorFormat b_fmt;
    RankFormat b;
    b.type = RankFormat::Type::B;
    b.cbits = 1;
    b.pbits = 64;
    b_fmt.ranks["M"] = b; // leaf rank bitmap
    // Bitmap coordinates cost 1 bit/position instead of 32/elem:
    // cheaper than compressed for dense fibers, never free.
    const auto cb = tensorBits(c_fmt, t);
    const auto bb = tensorBits(b_fmt, t);
    EXPECT_GT(bb, t.nnz() * 64); // payloads still paid
    EXPECT_NE(cb, bb);
}

// ------------------------------------------------------------------
// Packed physical storage: round trips and buffer-derived footprints.
// ------------------------------------------------------------------

TEST_P(FormatProperty, PackedRoundTripPreservesStructure)
{
    const auto t = matrix();
    for (const auto type :
         {RankFormat::Type::C, RankFormat::Type::U, RankFormat::Type::B}) {
        TensorFormat tf;
        RankFormat rf;
        rf.type = type;
        tf.ranks["K"] = rf;
        tf.ranks["M"] = rf;
        const auto packed = storage::PackedTensor::fromTensor(t, tf);
        EXPECT_EQ(packed.nnz(), t.nnz());
        const ft::Tensor back = packed.toTensor();
        EXPECT_TRUE(sameStructure(t, back));
        EXPECT_TRUE(t.equals(back));
        EXPECT_EQ(back.rankIds(), t.rankIds());
    }
}

TEST_P(FormatProperty, PackedFootprintMatchesFiberFormula)
{
    // Buffer-derived footprints (C: coordinate/payload array lengths,
    // B: bit-pool length) must agree exactly with the per-fiber
    // formula the analytical model uses.
    const auto t = matrix();
    for (const auto type :
         {RankFormat::Type::C, RankFormat::Type::U, RankFormat::Type::B}) {
        TensorFormat tf;
        RankFormat rf;
        rf.type = type;
        tf.ranks["K"] = rf;
        tf.ranks["M"] = rf;
        const auto packed = storage::PackedTensor::fromTensor(t, tf);
        EXPECT_EQ(storage::packedTensorBits(tf, packed),
                  tensorBits(tf, t))
            << "format type " << static_cast<int>(type);
    }
}

TEST_P(FormatProperty, PackedSubtreeBitsMatchPointerSubtrees)
{
    const auto t = matrix();
    TensorFormat tf; // all-compressed defaults
    const auto packed = storage::PackedTensor::fromTensor(t, tf);
    const auto& root = *t.root();
    for (std::size_t pos = 0; pos < root.size(); ++pos) {
        EXPECT_EQ(packed.subtreeBits(tf, 0, pos),
                  subtreeBits(tf, t.rankIds(), root.payloadAt(pos), 1));
        ASSERT_TRUE(root.payloadAt(pos).isFiber());
        EXPECT_EQ(packed.leafCountBelow(0, pos),
                  root.payloadAt(pos).fiber()->leafCount());
    }
}

TEST_P(FormatProperty, PackedOccupancyHintsMatchTensor)
{
    const auto t = matrix();
    const auto packed = storage::PackedTensor::fromTensor(t, {});
    EXPECT_EQ(packed.occupancyHints(), t.occupancyHints());
}

TEST_P(FormatProperty, PackedViewsFindEveryCoordinate)
{
    // find() through every backend variant — binary search (C),
    // implicit/contiguous fast path (U, when rows are contiguous),
    // bitmap probe (B) — agrees with a linear scan of the slice.
    const auto t = matrix();
    for (const auto type :
         {RankFormat::Type::C, RankFormat::Type::U, RankFormat::Type::B}) {
        TensorFormat tf;
        RankFormat rf;
        rf.type = type;
        tf.ranks["K"] = rf;
        tf.ranks["M"] = rf;
        const auto packed = storage::PackedTensor::fromTensor(t, tf);
        const ft::FiberView rootv = packed.rootView();
        ASSERT_EQ(rootv.size(), t.root()->size());
        for (std::size_t pos = rootv.lo; pos < rootv.hi; ++pos) {
            const ft::FiberView row = packed.childView(0, pos);
            // Present coordinates are found at their position...
            for (std::size_t p = row.lo; p < row.hi; ++p) {
                const auto f = row.find(row.coordAt(p));
                ASSERT_TRUE(f.has_value());
                EXPECT_EQ(*f, p);
            }
            // ...and a probe sweep agrees with membership.
            const ft::Coord shape = row.shape();
            for (ft::Coord c = 0; c < shape; c += 7) {
                const bool present = [&] {
                    for (std::size_t p = row.lo; p < row.hi; ++p) {
                        if (row.coordAt(p) == c)
                            return true;
                    }
                    return false;
                }();
                EXPECT_EQ(row.find(c).has_value(), present)
                    << "type " << static_cast<int>(type) << " coord "
                    << c;
            }
        }
    }
}

TEST_P(FormatProperty, PackedBuilderMatchesFromTensor)
{
    const auto t = matrix();
    storage::PackedBuilder builder("A", t.rankIds(),
                                   {t.rank(0).shape, t.rank(1).shape});
    t.forEachLeaf([&](std::span<const ft::Coord> p, double v) {
        builder.append(p, v);
    });
    const auto streamed = std::move(builder).finish();
    const auto packed = storage::PackedTensor::fromTensor(t, {});
    EXPECT_EQ(streamed.level(0).crd, packed.level(0).crd);
    EXPECT_EQ(streamed.level(1).crd, packed.level(1).crd);
    EXPECT_EQ(streamed.level(1).seg, packed.level(1).seg);
    EXPECT_EQ(streamed.values(), packed.values());
    EXPECT_TRUE(sameStructure(streamed.toTensor(), t));
}

TEST(PackedBuilderErrors, RejectsOutOfOrderAppends)
{
    storage::PackedBuilder builder("A", {"K", "M"}, {8, 8});
    const ft::Coord p1[2] = {3, 4};
    const ft::Coord p2[2] = {3, 2};
    builder.append(p1, 1.0);
    EXPECT_THROW(builder.append(p2, 2.0), ModelError);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatProperty, ::testing::Range(0, 6));

} // namespace
} // namespace teaal::fmt
