/**
 * @file
 * Tests of the compile-once / run-many pipeline API:
 * Specification -> compile() -> CompiledModel::run(Workload,
 * RunOptions).
 *
 * Covers run-many determinism (and equivalence with the legacy
 * Simulator shim), the no-deep-copy guarantee for unmutated workload
 * inputs, RunOptions (coiter overrides, extra observers), and the
 * structured diagnostics surfaced by parse/compile instead of
 * asserts.
 */
#include <gtest/gtest.h>

#include "accelerators/accelerators.hpp"
#include "baselines/baselines.hpp"
#include "compiler/pipeline.hpp"
#include "util/diagnostic.hpp"
#include "workloads/datasets.hpp"

namespace teaal
{
namespace
{

using compiler::CompiledModel;
using compiler::RunOptions;
using compiler::SimulationResult;
using compiler::Simulator;
using compiler::Workload;

accel::GammaConfig
smallGamma()
{
    accel::GammaConfig cfg;
    cfg.pes = 4;
    cfg.rowChunk = 4;
    cfg.kChunk = 8;
    cfg.fiberCacheBytes = 64 * 1024;
    return cfg;
}

accel::ExTensorConfig
smallExTensor()
{
    accel::ExTensorConfig cfg;
    cfg.pes = 4;
    cfg.tileK1 = 16;
    cfg.tileK0 = 4;
    cfg.tileM1 = 16;
    cfg.tileM0 = 4;
    cfg.tileN1 = 16;
    cfg.tileN0 = 4;
    cfg.llcBytes = 256 * 1024;
    return cfg;
}

struct TestMatrices
{
    ft::Tensor a;
    ft::Tensor b;
};

TestMatrices
makeMatrices(std::uint64_t seed)
{
    return {workloads::uniformMatrix("A", 40, 32, 300, seed,
                                     {"K", "M"}),
            workloads::uniformMatrix("B", 40, 36, 300, seed + 1,
                                     {"K", "N"})};
}

void
expectSameRecords(const SimulationResult& x, const SimulationResult& y)
{
    ASSERT_EQ(x.records.size(), y.records.size());
    for (std::size_t i = 0; i < x.records.size(); ++i) {
        EXPECT_TRUE(x.records[i].execStats == y.records[i].execStats)
            << "einsum " << i;
        ASSERT_EQ(x.records[i].traffic.size(),
                  y.records[i].traffic.size());
        for (const auto& [tensor, tt] : x.records[i].traffic) {
            const auto it = y.records[i].traffic.find(tensor);
            ASSERT_NE(it, y.records[i].traffic.end()) << tensor;
            EXPECT_DOUBLE_EQ(tt.readBytes, it->second.readBytes);
            EXPECT_DOUBLE_EQ(tt.writeBytes, it->second.writeBytes);
            EXPECT_DOUBLE_EQ(tt.poBytes, it->second.poBytes);
        }
    }
}

void
expectSameResults(const SimulationResult& x, const SimulationResult& y)
{
    expectSameRecords(x, y);
    ASSERT_EQ(x.traffic.size(), y.traffic.size());
    for (const auto& [tensor, tt] : x.traffic) {
        const auto it = y.traffic.find(tensor);
        ASSERT_NE(it, y.traffic.end()) << tensor;
        EXPECT_DOUBLE_EQ(tt.readBytes, it->second.readBytes);
        EXPECT_DOUBLE_EQ(tt.writeBytes, it->second.writeBytes);
        EXPECT_DOUBLE_EQ(tt.poBytes, it->second.poBytes);
    }
    EXPECT_DOUBLE_EQ(x.perf.totalSeconds, y.perf.totalSeconds);
    EXPECT_DOUBLE_EQ(x.energy.totalJoules, y.energy.totalJoules);
}

/// Compile once, run twice: records, perf, and traffic identical
/// between runs and identical to the legacy Simulator path.
TEST(Pipeline, RunManyIsDeterministicAndMatchesLegacy)
{
    const auto mats = makeMatrices(11);
    auto model = compiler::compile(accel::gamma(smallGamma()));
    Workload w;
    w.add("A", mats.a).add("B", mats.b);

    const SimulationResult first = model.run(w);
    const SimulationResult second = model.run(w);
    expectSameResults(first, second);
    EXPECT_TRUE(first.result(model.spec())
                    .equals(second.result(model.spec()), 0.0));

    Simulator legacy(accel::gamma(smallGamma()));
    const SimulationResult shim =
        legacy.run({{"A", mats.a.clone()}, {"B", mats.b.clone()}});
    expectSameResults(first, shim);
    EXPECT_TRUE(first.result(model.spec())
                    .equals(shim.result(legacy.spec()), 0.0));
}

/// The second run on a cached workload performs no deep copies at
/// all: plans, prepared tensors, and intermediates are reused.
TEST(Pipeline, CachedRunIsCloneFree)
{
    const auto mats = makeMatrices(12);
    auto model = compiler::compile(accel::gamma(smallGamma()));
    Workload w;
    w.add("A", mats.a).add("B", mats.b);
    (void)model.run(w); // instantiating run

    const std::uint64_t before = ft::Tensor::cloneCount();
    (void)model.run(w);
    EXPECT_EQ(ft::Tensor::cloneCount() - before, 0u);
}

/// Workload inputs that need no preparation (already concordant, no
/// partitioning) are never deep-copied — not even on the
/// instantiating run.
TEST(Pipeline, ConcordantInputsAreNeverDeepCopied)
{
    const char* text = "einsum:\n"
                       "  declaration:\n"
                       "    A: [K, M]\n"
                       "    B: [K, N]\n"
                       "    Z: [M, N]\n"
                       "  expressions:\n"
                       "    - Z[m, n] = A[k, m] * B[k, n]\n";
    auto model =
        compiler::compile(compiler::Specification::parse(text));
    // Default loop order is M, N, K: concordant orders are A [M, K]
    // and B [N, K].
    const ft::Tensor a =
        workloads::uniformMatrix("A", 32, 40, 200, 5, {"M", "K"});
    const ft::Tensor b =
        workloads::uniformMatrix("B", 36, 40, 200, 6, {"N", "K"});
    Workload w;
    w.add("A", a).add("B", b);

    const std::uint64_t before = ft::Tensor::cloneCount();
    const SimulationResult result = model.run(w);
    EXPECT_EQ(ft::Tensor::cloneCount() - before, 0u);
    EXPECT_GT(result.result(model.spec()).nnz(), 0u);
}

/// The plans() accessor exposes one instantiated plan per Einsum
/// (cascades execute once to materialize intermediates).
TEST(Pipeline, PlansAccessorCoversTheCascade)
{
    const auto mats = makeMatrices(13);
    auto model = compiler::compile(accel::gamma(smallGamma()));
    Workload w;
    w.add("A", mats.a).add("B", mats.b);
    const auto& plans = model.plans(w);
    ASSERT_EQ(plans.size(),
              model.spec().einsums.expressions.size());
    for (const auto& plan : plans)
        EXPECT_FALSE(plan.loops.empty());
    // A later run() reuses exactly these plans (no re-instantiation).
    const std::uint64_t before = ft::Tensor::cloneCount();
    (void)model.run(w);
    EXPECT_EQ(ft::Tensor::cloneCount() - before, 0u);
}

/// Per-loop co-iteration overrides change the walk, not the answer.
TEST(Pipeline, CoiterOverridesPreserveResults)
{
    const auto mats = makeMatrices(14);
    auto model = compiler::compile(accel::extensor(smallExTensor()));
    Workload w;
    w.add("A", mats.a).add("B", mats.b);
    const SimulationResult base = model.run(w);

    RunOptions forced;
    for (const auto& plan : model.plans(w)) {
        for (const auto& lr : plan.loops) {
            if (!lr.isUpperPartition)
                forced.coiterOverrides[lr.name] =
                    ir::CoiterStrategy::TwoFinger;
        }
    }
    const SimulationResult two = model.run(w, forced);
    EXPECT_TRUE(base.result(model.spec())
                    .equals(two.result(model.spec()), 1e-12));
    EXPECT_EQ(base.records[0].execStats.computeMuls,
              two.records[0].execStats.computeMuls);
}

/// Cached intermediates are keyed per semiring: a min-plus run after
/// an arithmetic run on the same workload must match a fresh
/// min-plus run, not consume arithmetic-valued intermediates.
TEST(Pipeline, SemiringChangeDoesNotReuseStaleIntermediates)
{
    const char* text = "einsum:\n"
                       "  declaration:\n"
                       "    A: [K, M]\n"
                       "    B: [K, N]\n"
                       "    C: [N]\n"
                       "    T: [M, N]\n"
                       "    Z: [M]\n"
                       "  expressions:\n"
                       "    - T[m, n] = A[k, m] * B[k, n]\n"
                       "    - Z[m] = T[m, n] * C[n]\n";
    const auto mats = makeMatrices(19);
    ft::Tensor c("C", {"N"}, {36});
    for (ft::Coord n = 0; n < 36; n += 2) {
        const std::vector<ft::Coord> p{n};
        c.set(p, 1.0 + 0.5 * static_cast<double>(n));
    }
    Workload w;
    w.add("A", mats.a).add("B", mats.b).add("C", c);

    auto warm =
        compiler::compile(compiler::Specification::parse(text));
    (void)warm.run(w); // arithmetic run warms the plan cache
    RunOptions min_plus;
    min_plus.semiring = exec::Semiring::minPlus();
    const SimulationResult warmed = warm.run(w, min_plus);

    auto fresh =
        compiler::compile(compiler::Specification::parse(text));
    const SimulationResult direct = fresh.run(w, min_plus);

    EXPECT_TRUE(warmed.result(warm.spec())
                    .equals(direct.result(fresh.spec()), 0.0));
    expectSameRecords(warmed, direct);
}

/// Extra RunOptions observers ride alongside the performance model
/// without perturbing it.
TEST(Pipeline, ExtraObserversSeeEveryEvent)
{
    class CountingObserver : public trace::Observer
    {
      public:
        std::size_t batches = 0;
        std::size_t events = 0;
        void
        onEventBatch(const trace::EventBatch& batch) override
        {
            ++batches;
            events += batch.events.size();
        }
    };

    const auto mats = makeMatrices(15);
    auto model = compiler::compile(accel::gamma(smallGamma()));
    Workload w;
    w.add("A", mats.a).add("B", mats.b);
    const SimulationResult base = model.run(w);

    CountingObserver counter;
    RunOptions opts;
    opts.observers.push_back(&counter);
    const SimulationResult observed = model.run(w, opts);

    EXPECT_GT(counter.batches, 0u);
    EXPECT_GT(counter.events, 0u);
    expectSameResults(base, observed);
}

// ------------------------------------------------------- diagnostics

TEST(PipelineDiagnostics, MissingEinsumSection)
{
    try {
        compiler::Specification::parse("mapping:\n  loop-order:\n");
        FAIL() << "expected DiagnosticError";
    } catch (const DiagnosticError& e) {
        EXPECT_EQ(e.diagnostic().section, "einsum");
        EXPECT_NE(e.diagnostic().message.find("missing"),
                  std::string::npos);
    }
}

TEST(PipelineDiagnostics, UndeclaredTensorInExpression)
{
    const char* text = "einsum:\n"
                       "  declaration:\n"
                       "    A: [K, M]\n"
                       "    Z: [M]\n"
                       "  expressions:\n"
                       "    - Z[m] = A[k, m] * C[k]\n";
    try {
        compiler::Specification::parse(text);
        FAIL() << "expected DiagnosticError";
    } catch (const DiagnosticError& e) {
        EXPECT_EQ(e.diagnostic().section, "einsum");
        EXPECT_EQ(e.diagnostic().key, "C");
    }
}

TEST(PipelineDiagnostics, BadRankCount)
{
    const char* text = "einsum:\n"
                       "  declaration:\n"
                       "    A: [K]\n"
                       "    B: [K]\n"
                       "    Z: [M]\n"
                       "  expressions:\n"
                       "    - Z[m] = A[k, m] * B[k]\n";
    try {
        compiler::Specification::parse(text);
        FAIL() << "expected DiagnosticError";
    } catch (const DiagnosticError& e) {
        EXPECT_EQ(e.diagnostic().section, "einsum");
        EXPECT_EQ(e.diagnostic().key, "A");
        EXPECT_NE(e.diagnostic().message.find("ranks"),
                  std::string::npos);
    }
}

TEST(PipelineDiagnostics, MalformedYamlDocument)
{
    EXPECT_THROW(compiler::Specification::parse("nonsense: {"),
                 SpecError);
}

TEST(PipelineDiagnostics, MissingWorkloadInput)
{
    const auto mats = makeMatrices(16);
    auto model = compiler::compile(accel::gamma(smallGamma()));
    Workload w;
    w.add("A", mats.a); // B missing
    try {
        (void)model.run(w);
        FAIL() << "expected DiagnosticError";
    } catch (const DiagnosticError& e) {
        EXPECT_EQ(e.diagnostic().section, "workload");
        EXPECT_EQ(e.diagnostic().key, "B");
    }
}

/// A storage binding naming a component the bound topology does not
/// declare fails compile() (it used to fail mid-run with a bare
/// SpecError).
TEST(PipelineDiagnostics, UnknownStorageComponentFailsCompile)
{
    const char* text = "einsum:\n"
                       "  declaration:\n"
                       "    A: [K, M]\n"
                       "    B: [K, N]\n"
                       "    Z: [M, N]\n"
                       "  expressions:\n"
                       "    - Z[m, n] = A[k, m] * B[k, n]\n"
                       "architecture:\n"
                       "  accel:\n"
                       "    subtree:\n"
                       "      - name: System\n"
                       "        local:\n"
                       "          - name: Memory\n"
                       "            class: DRAM\n"
                       "          - name: Mul\n"
                       "            class: compute\n"
                       "binding:\n"
                       "  Z:\n"
                       "    components:\n"
                       "      - component: NoSuchBuffer\n"
                       "        bindings:\n"
                       "          - tensor: A\n"
                       "            rank: M\n";
    try {
        (void)compiler::compile(compiler::Specification::parse(text));
        FAIL() << "expected DiagnosticError";
    } catch (const DiagnosticError& e) {
        EXPECT_EQ(e.diagnostic().section, "binding");
        EXPECT_EQ(e.diagnostic().key, "NoSuchBuffer");
        EXPECT_NE(e.diagnostic().message.find("NoSuchBuffer"),
                  std::string::npos);
        EXPECT_NE(e.diagnostic().message.find("architecture"),
                  std::string::npos);
    }
}

/// Op bindings to unknown components used to silently create an
/// empty pseudo-component in the model (default instance count,
/// wrong class); they now fail compile() the same way.
TEST(PipelineDiagnostics, UnknownOpComponentFailsCompile)
{
    const char* text = "einsum:\n"
                       "  declaration:\n"
                       "    A: [K, M]\n"
                       "    B: [K, N]\n"
                       "    Z: [M, N]\n"
                       "  expressions:\n"
                       "    - Z[m, n] = A[k, m] * B[k, n]\n"
                       "architecture:\n"
                       "  accel:\n"
                       "    subtree:\n"
                       "      - name: System\n"
                       "        local:\n"
                       "          - name: Memory\n"
                       "            class: DRAM\n"
                       "          - name: Mul\n"
                       "            class: compute\n"
                       "binding:\n"
                       "  Z:\n"
                       "    components:\n"
                       "      - component: GhostALU\n"
                       "        bindings:\n"
                       "          - op: mul\n";
    try {
        (void)compiler::compile(compiler::Specification::parse(text));
        FAIL() << "expected DiagnosticError";
    } catch (const DiagnosticError& e) {
        EXPECT_EQ(e.diagnostic().section, "binding");
        EXPECT_EQ(e.diagnostic().key, "GhostALU");
    }
}

TEST(PipelineDiagnostics, WorkloadRankMismatch)
{
    const auto mats = makeMatrices(17);
    auto model = compiler::compile(accel::gamma(smallGamma()));
    const ft::Tensor wrong =
        workloads::uniformMatrix("B", 40, 36, 100, 3, {"K", "Q"});
    Workload w;
    w.add("A", mats.a).add("B", wrong);
    try {
        (void)model.run(w);
        FAIL() << "expected DiagnosticError";
    } catch (const DiagnosticError& e) {
        EXPECT_EQ(e.diagnostic().section, "workload");
        EXPECT_EQ(e.diagnostic().key, "B");
    }
}

/// The pipeline's algorithmic-minimum matches the legacy Simulator's
/// (the Figure 9 normalization must not drift).
TEST(Pipeline, AlgorithmicMinMatchesLegacy)
{
    const auto mats = makeMatrices(18);
    auto model = compiler::compile(accel::gamma(smallGamma()));
    Workload w;
    w.add("A", mats.a).add("B", mats.b);
    const SimulationResult result = model.run(w);

    Simulator legacy(accel::gamma(smallGamma()));
    const SimulationResult shim =
        legacy.run({{"A", mats.a.clone()}, {"B", mats.b.clone()}});

    EXPECT_DOUBLE_EQ(model.algorithmicMinBytes(w, result),
                     legacy.algorithmicMinBytes(shim.tensors));
}

} // namespace
} // namespace teaal
