/**
 * @file
 * Model equivalence under sharding (the two-tier model split): the
 * EinsumRecord — every component counter row, per-PE load, per-tensor
 * traffic including partial-output bytes, and the trace-bus
 * diagnostics — must be byte-identical at threads 1/2/4 for all four
 * Table 1 accelerators, on both the pointer and the packed backend.
 *
 * threads=1 runs the serial façade (both tiers fed inline, in order);
 * threads>=2 with no extra observers runs the split path (per-shard
 * accumulators off the capture filter + coordinator-replayed storage
 * tier); threads>=2 *with* an extra observer falls back to full
 * capture/replay. All three must agree bit-for-bit.
 */
#include <gtest/gtest.h>

#include "accelerators/accelerators.hpp"
#include "compiler/pipeline.hpp"
#include "model/record.hpp"
#include "storage/packed.hpp"
#include "workloads/datasets.hpp"

namespace teaal
{
namespace
{

using compiler::CompiledModel;
using compiler::RunOptions;
using compiler::SimulationResult;
using compiler::Workload;

accel::GammaConfig
smallGamma()
{
    accel::GammaConfig cfg;
    cfg.pes = 4;
    cfg.rowChunk = 4;
    cfg.kChunk = 8;
    cfg.fiberCacheBytes = 64 * 1024;
    return cfg;
}

accel::ExTensorConfig
smallExTensor()
{
    accel::ExTensorConfig cfg;
    cfg.pes = 4;
    cfg.tileK1 = 16;
    cfg.tileK0 = 4;
    cfg.tileM1 = 16;
    cfg.tileM0 = 4;
    cfg.tileN1 = 16;
    cfg.tileN0 = 4;
    cfg.llcBytes = 256 * 1024;
    return cfg;
}

accel::OuterSpaceConfig
smallOuterSpace()
{
    accel::OuterSpaceConfig cfg;
    cfg.chunkOuter = 32;
    cfg.chunkInner = 8;
    cfg.mergeChunkOuter = 16;
    cfg.mergeChunkInner = 4;
    return cfg;
}

accel::SigmaConfig
smallSigma()
{
    accel::SigmaConfig cfg;
    cfg.kTile = 16;
    cfg.stationaryChunk = 64;
    return cfg;
}

struct TestMatrices
{
    ft::Tensor a;
    ft::Tensor b;
};

TestMatrices
makeMatrices(std::uint64_t seed)
{
    return {workloads::uniformMatrix("A", 40, 32, 300, seed, {"K", "M"}),
            workloads::uniformMatrix("B", 40, 36, 300, seed + 1,
                                     {"K", "N"})};
}

/**
 * Byte-exact EinsumRecord comparison. EXPECT_EQ on doubles is an
 * exact (not ULP-tolerant) comparison on purpose: the split model's
 * guarantee is bit-identity, resting on every model sum being a
 * dyadic rational.
 */
void
expectIdenticalRecords(const SimulationResult& x,
                       const SimulationResult& y, const char* what)
{
    ASSERT_EQ(x.records.size(), y.records.size()) << what;
    for (std::size_t i = 0; i < x.records.size(); ++i) {
        const model::EinsumRecord& a = x.records[i];
        const model::EinsumRecord& b = y.records[i];
        SCOPED_TRACE(std::string(what) + ", einsum " +
                     std::to_string(i) + " (" + a.output + ")");

        EXPECT_TRUE(a.execStats == b.execStats);
        EXPECT_EQ(a.traceEvents, b.traceEvents);
        EXPECT_EQ(a.traceBatches, b.traceBatches);
        EXPECT_EQ(a.loopOrder, b.loopOrder);
        EXPECT_EQ(a.temporalPrefix, b.temporalPrefix);
        EXPECT_EQ(a.nonStorageComponents, b.nonStorageComponents);

        // Every component row: same set, same class/instances, same
        // counter rows (keys AND exact values), same per-PE loads.
        ASSERT_EQ(a.components.size(), b.components.size());
        for (const auto& [name, ca] : a.components) {
            const auto it = b.components.find(name);
            ASSERT_NE(it, b.components.end()) << name;
            const model::ComponentActions& cb = it->second;
            EXPECT_EQ(ca.cls, cb.cls) << name;
            EXPECT_EQ(ca.instances, cb.instances) << name;
            EXPECT_EQ(ca.counts, cb.counts) << name;
            EXPECT_TRUE(ca.perPe == cb.perPe)
                << name << ": per-PE loads differ";
        }

        // Every traffic row, including partial-output bytes.
        ASSERT_EQ(a.traffic.size(), b.traffic.size());
        for (const auto& [tensor, ta] : a.traffic) {
            const auto it = b.traffic.find(tensor);
            ASSERT_NE(it, b.traffic.end()) << tensor;
            EXPECT_EQ(ta.readBytes, it->second.readBytes) << tensor;
            EXPECT_EQ(ta.writeBytes, it->second.writeBytes) << tensor;
            EXPECT_EQ(ta.poBytes, it->second.poBytes) << tensor;
        }
    }
    EXPECT_EQ(x.perf.totalSeconds, y.perf.totalSeconds) << what;
    EXPECT_EQ(x.energy.totalJoules, y.energy.totalJoules) << what;
}

SimulationResult
runAt(CompiledModel& model, const Workload& w, unsigned threads)
{
    RunOptions opts;
    opts.threads = threads;
    return model.run(w, opts);
}

/** Pointer backend: records byte-identical at threads 1/2/4. */
void
expectModelEquivalence(compiler::Specification spec)
{
    const TestMatrices m = makeMatrices(23);
    auto model = compiler::compile(std::move(spec));
    Workload w;
    w.add("A", m.a).add("B", m.b);

    const SimulationResult t1 = runAt(model, w, 1);
    const SimulationResult t2 = runAt(model, w, 2);
    const SimulationResult t4 = runAt(model, w, 4);
    expectIdenticalRecords(t1, t2, "threads 1 vs 2");
    expectIdenticalRecords(t1, t4, "threads 1 vs 4");
}

/** Packed backend: same guarantee over packed rank stores. */
void
expectPackedModelEquivalence(compiler::Specification spec)
{
    const TestMatrices m = makeMatrices(29);
    auto model = compiler::compile(std::move(spec));

    const auto packedA = storage::PackedTensor::fromTensor(
        m.a, model.spec().formats.getLenient("A"));
    const auto packedB = storage::PackedTensor::fromTensor(
        m.b, model.spec().formats.getLenient("B"));
    Workload w;
    w.add("A", packedA).add("B", packedB);

    const SimulationResult t1 = runAt(model, w, 1);
    const SimulationResult t2 = runAt(model, w, 2);
    const SimulationResult t4 = runAt(model, w, 4);
    expectIdenticalRecords(t1, t2, "packed threads 1 vs 2");
    expectIdenticalRecords(t1, t4, "packed threads 1 vs 4");
}

// ---------------------------------------- Table 1, pointer backend

TEST(ModelParallel, GammaPointerThreads124)
{
    expectModelEquivalence(accel::gamma(smallGamma()));
}

TEST(ModelParallel, ExTensorPointerThreads124)
{
    expectModelEquivalence(accel::extensor(smallExTensor()));
}

TEST(ModelParallel, OuterSpacePointerThreads124)
{
    expectModelEquivalence(accel::outerSpace(smallOuterSpace()));
}

TEST(ModelParallel, SigmaPointerThreads124)
{
    // Contraction-outermost Z shards with the reduce merge (and at
    // this thin K1 geometry, inner-rank sharding below the top tile
    // loop): the split model must survive the reduce-record fixup
    // with bit-identical counters.
    expectModelEquivalence(accel::sigma(smallSigma()));
}

// ----------------------------------------- Table 1, packed backend

TEST(ModelParallel, GammaPackedThreads124)
{
    expectPackedModelEquivalence(accel::gamma(smallGamma()));
}

TEST(ModelParallel, ExTensorPackedThreads124)
{
    expectPackedModelEquivalence(accel::extensor(smallExTensor()));
}

TEST(ModelParallel, OuterSpacePackedThreads124)
{
    expectPackedModelEquivalence(accel::outerSpace(smallOuterSpace()));
}

TEST(ModelParallel, SigmaPackedThreads124)
{
    expectPackedModelEquivalence(accel::sigma(smallSigma()));
}

// ------------------------------------------------ mode equivalence

/**
 * The split path (threads=4, model is the sole consumer) and the
 * full-capture fallback (threads=4 with an extra observer) must
 * produce the same records — they are two routes to one model.
 */
TEST(ModelParallel, SplitPathMatchesFullReplayFallback)
{
    const TestMatrices m = makeMatrices(31);
    auto model = compiler::compile(accel::gamma(smallGamma()));
    Workload w;
    w.add("A", m.a).add("B", m.b);

    RunOptions split;
    split.threads = 4;
    const SimulationResult split_r = model.run(w, split);

    trace::Observer noop; // forces the full-capture fallback
    RunOptions full;
    full.threads = 4;
    full.observers.push_back(&noop);
    const SimulationResult full_r = model.run(w, full);

    expectIdenticalRecords(split_r, full_r, "split vs full replay");
}

/**
 * Trace-bus diagnostics sum correctly across shards: the sharded
 * run's traceEvents/traceBatches — shard-consumed datapath records
 * plus coordinator-replayed storage records — equal the serial run's
 * totals, and are non-trivial.
 */
TEST(ModelParallel, TraceDiagnosticsSumAcrossShards)
{
    const TestMatrices m = makeMatrices(37);
    auto model = compiler::compile(accel::extensor(smallExTensor()));
    Workload w;
    w.add("A", m.a).add("B", m.b);

    const SimulationResult serial = runAt(model, w, 1);
    const SimulationResult sharded = runAt(model, w, 4);
    ASSERT_EQ(serial.records.size(), sharded.records.size());
    for (std::size_t i = 0; i < serial.records.size(); ++i) {
        EXPECT_GT(serial.records[i].traceEvents, 0u) << i;
        EXPECT_GT(serial.records[i].traceBatches, 0u) << i;
        EXPECT_EQ(serial.records[i].traceEvents,
                  sharded.records[i].traceEvents)
            << i;
        EXPECT_EQ(serial.records[i].traceBatches,
                  sharded.records[i].traceBatches)
            << i;
    }
    EXPECT_EQ(serial.perf.traceEvents, sharded.perf.traceEvents);
    EXPECT_EQ(serial.perf.traceBatches, sharded.perf.traceBatches);
}

// --------------------------------------------------- PeLoadVector

TEST(ModelParallel, PeLoadVectorSortedInsertAndMax)
{
    model::PeLoadVector v;
    v[7] = 3.0;
    v[2] = 5.0;
    v.add(7, 1.0);
    v[11] += 0.5;
    EXPECT_EQ(v.size(), 3u);
    EXPECT_EQ(v.maxLoad(), 5.0);

    // Iteration order is ascending by PE id, by construction.
    std::vector<std::uint64_t> ids;
    for (const auto& [pe, load] : v)
        ids.push_back(pe);
    EXPECT_EQ(ids, (std::vector<std::uint64_t>{2, 7, 11}));
}

TEST(ModelParallel, PeLoadVectorMergeIsElementWise)
{
    model::PeLoadVector a;
    a[0] = 1.0;
    a[3] = 2.0;
    model::PeLoadVector b;
    b[3] = 4.0;
    b[5] = 8.0;
    a.merge(b);
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(a[0], 1.0);
    EXPECT_EQ(a[3], 6.0);
    EXPECT_EQ(a[5], 8.0);
    EXPECT_EQ(a.maxLoad(), 8.0);
}

} // namespace
} // namespace teaal
