/**
 * @file
 * Functional tests of the simulator generator (IR builder) + executor:
 * every mapped Einsum must produce bit-identical results to a naive
 * dense reference, including under the paper's real accelerator
 * mappings (OuterSPACE Fig. 3, Gamma/ExTensor/SIGMA Fig. 8).
 */
#include <gtest/gtest.h>

#include <map>

#include "exec/executor.hpp"
#include "fibertree/transform.hpp"
#include "ir/plan.hpp"
#include "util/random.hpp"
#include "yaml/yaml.hpp"

namespace teaal
{
namespace
{

using ft::Coord;
using ft::Tensor;

/** Random sparse matrix with the given density. */
Tensor
randomMatrix(const std::string& name, const std::vector<std::string>& ids,
             Coord rows, Coord cols, double density, std::uint64_t seed)
{
    Xoshiro256 rng(seed);
    std::vector<std::pair<std::vector<Coord>, double>> coo;
    for (Coord r = 0; r < rows; ++r) {
        for (Coord c = 0; c < cols; ++c) {
            if (rng.uniform() < density)
                coo.push_back({{r, c}, 1.0 + rng.uniform()});
        }
    }
    return Tensor::fromCoo(name, ids, {rows, cols}, coo);
}

Tensor
randomVector(const std::string& name, const std::string& id, Coord n,
             double density, std::uint64_t seed)
{
    Xoshiro256 rng(seed);
    std::vector<std::pair<std::vector<Coord>, double>> coo;
    for (Coord i = 0; i < n; ++i) {
        if (rng.uniform() < density)
            coo.push_back({{i}, 1.0 + rng.uniform()});
    }
    return Tensor::fromCoo(name, {id}, {n}, coo);
}

/** Dense-reference SpMSpM: Z[m,n] = sum_k A[k,m] * B[k,n]. */
Tensor
referenceMatmul(const Tensor& a_km, const Tensor& b_kn, Coord m_shape,
                Coord n_shape)
{
    Tensor z("Zref", {"M", "N"}, {m_shape, n_shape});
    a_km.forEachLeaf([&](std::span<const Coord> pa, double va) {
        const Coord k = pa[0];
        const Coord m = pa[1];
        b_kn.forEachLeaf([&](std::span<const Coord> pb, double vb) {
            if (pb[0] != k)
                return;
            const std::vector<Coord> p{m, pb[1]};
            z.set(p, z.at(p) + va * vb);
        });
    });
    return z;
}

/** Build a plan and run it; returns (output, stats). */
Tensor
runEinsum(const std::string& einsum_yaml, const std::string& mapping_yaml,
          std::map<std::string, Tensor> tensors,
          const std::vector<std::string>& intermediates = {},
          exec::ExecutionStats* stats_out = nullptr)
{
    const auto es = einsum::EinsumSpec::parse(yaml::parse(einsum_yaml));
    const auto ms = mapping_yaml.empty()
                        ? mapping::MappingSpec()
                        : mapping::MappingSpec::parse(
                              yaml::parse(mapping_yaml));
    trace::Observer null_obs;
    Tensor result;
    for (const auto& expr : es.expressions) {
        // Swizzle stored tensors to rank-order first (as the compiler
        // does offline).
        for (auto& [name, t] : tensors) {
            const auto& order = ms.rankOrder(name);
            if (!order.empty() && t.rankIds() != order &&
                t.rankLevel(order[0]) >= 0) {
                t = ft::swizzle(t, order);
            }
        }
        const ir::EinsumPlan plan =
            ir::buildPlan(expr, es, ms, tensors, intermediates);
        exec::Executor ex(plan, null_obs);
        result = ex.run();
        if (stats_out)
            *stats_out = ex.stats();
        tensors.insert_or_assign(expr.output.name, result.clone());
    }
    return result;
}

const char* kMatmulEinsum = "declaration:\n"
                            "  A: [K, M]\n"
                            "  B: [K, N]\n"
                            "  Z: [M, N]\n"
                            "expressions:\n"
                            "  - Z[m, n] = A[k, m] * B[k, n]\n";

TEST(Exec, UnmappedMatmulMatchesReference)
{
    const Tensor a = randomMatrix("A", {"K", "M"}, 20, 16, 0.3, 1);
    const Tensor b = randomMatrix("B", {"K", "N"}, 20, 24, 0.3, 2);
    const Tensor ref = referenceMatmul(a, b, 16, 24);
    const Tensor z =
        runEinsum(kMatmulEinsum, "", {{"A", a.clone()}, {"B", b.clone()}});
    EXPECT_TRUE(z.equals(ref, 1e-9)) << z.toString(8) << "\nvs\n"
                                     << ref.toString(8);
}

TEST(Exec, MatVecMatchesReference)
{
    const char* einsum = "declaration:\n"
                         "  A: [K, M]\n"
                         "  B: [K]\n"
                         "  Z: [M]\n"
                         "expressions:\n"
                         "  - Z[m] = A[k, m] * B[k]\n";
    const Tensor a = randomMatrix("A", {"K", "M"}, 30, 25, 0.25, 3);
    const Tensor b = randomVector("B", "K", 30, 0.5, 4);
    Tensor ref("Zref", {"M"}, {25});
    a.forEachLeaf([&](std::span<const Coord> p, double va) {
        const std::vector<Coord> bk{p[0]};
        const double vb = b.at(bk);
        if (vb != 0) {
            const std::vector<Coord> zm{p[1]};
            ref.set(zm, ref.at(zm) + va * vb);
        }
    });
    const Tensor z =
        runEinsum(einsum, "", {{"A", a.clone()}, {"B", b.clone()}});
    EXPECT_TRUE(z.equals(ref, 1e-9));
}

TEST(Exec, ReductionAssignSumsOverK)
{
    const char* einsum = "declaration:\n"
                         "  T: [K, M]\n"
                         "  Z: [M]\n"
                         "expressions:\n"
                         "  - Z[m] = T[k, m]\n";
    const Tensor t = randomMatrix("T", {"K", "M"}, 10, 8, 0.5, 5);
    Tensor ref("Zref", {"M"}, {8});
    t.forEachLeaf([&](std::span<const Coord> p, double v) {
        const std::vector<Coord> zm{p[1]};
        ref.set(zm, ref.at(zm) + v);
    });
    const Tensor z = runEinsum(einsum, "", {{"T", t.clone()}});
    EXPECT_TRUE(z.equals(ref, 1e-9));
}

TEST(Exec, AddEinsumIsUnion)
{
    const char* einsum = "declaration:\n"
                         "  A: [V]\n"
                         "  B: [V]\n"
                         "  Z: [V]\n"
                         "expressions:\n"
                         "  - Z[v] = A[v] + B[v]\n";
    const Tensor a = randomVector("A", "V", 40, 0.4, 6);
    const Tensor b = randomVector("B", "V", 40, 0.4, 7);
    Tensor ref("Zref", {"V"}, {40});
    for (Coord v = 0; v < 40; ++v) {
        const std::vector<Coord> p{v};
        const double s = a.at(p) + b.at(p);
        if (s != 0)
            ref.set(p, s);
    }
    const Tensor z =
        runEinsum(einsum, "", {{"A", a.clone()}, {"B", b.clone()}});
    EXPECT_TRUE(z.equals(ref, 1e-9));
}

TEST(Exec, SubtractEinsum)
{
    const char* einsum = "declaration:\n"
                         "  A: [V]\n"
                         "  B: [V]\n"
                         "  Z: [V]\n"
                         "expressions:\n"
                         "  - Z[v] = A[v] - B[v]\n";
    const Tensor a = randomVector("A", "V", 30, 0.5, 8);
    const Tensor b = randomVector("B", "V", 30, 0.5, 9);
    const Tensor z =
        runEinsum(einsum, "", {{"A", a.clone()}, {"B", b.clone()}});
    for (Coord v = 0; v < 30; ++v) {
        const std::vector<Coord> p{v};
        EXPECT_NEAR(z.at(p), a.at(p) - b.at(p), 1e-9);
    }
}

TEST(Exec, TakeCopiesSecondOperandGamma)
{
    // Gamma's first Einsum: T[k,m,n] = take(A[k,m], B[k,n], 1).
    const char* einsum =
        "declaration:\n"
        "  A: [K, M]\n"
        "  B: [K, N]\n"
        "  T: [K, M, N]\n"
        "expressions:\n"
        "  - T[k, m, n] = take(A[k, m], B[k, n], 1)\n";
    const Tensor a = randomMatrix("A", {"K", "M"}, 12, 10, 0.3, 10);
    const Tensor b = randomMatrix("B", {"K", "N"}, 12, 14, 0.3, 11);
    const Tensor t =
        runEinsum(einsum, "", {{"A", a.clone()}, {"B", b.clone()}});
    // T[k,m,n] = B[k,n] wherever A[k,m] != 0 and B[k,n] != 0.
    std::size_t expected = 0;
    a.forEachLeaf([&](std::span<const Coord> pa, double) {
        b.forEachLeaf([&](std::span<const Coord> pb, double vb) {
            if (pa[0] != pb[0])
                return;
            ++expected;
            const std::vector<Coord> p{pa[0], pa[1], pb[1]};
            EXPECT_DOUBLE_EQ(t.at(p), vb);
        });
    });
    EXPECT_EQ(t.nnz(), expected);
}

TEST(Exec, TakeCopiesFirstOperandWithProbe)
{
    // SIGMA's first Einsum: S[k,m] = take(A[k,m], B[k,n], 0) keeps
    // A rows whose B row is non-empty; n is probed, not iterated.
    const char* einsum = "declaration:\n"
                         "  A: [K, M]\n"
                         "  B: [K, N]\n"
                         "  S: [K, M]\n"
                         "expressions:\n"
                         "  - S[k, m] = take(A[k, m], B[k, n], 0)\n";
    const Tensor a = randomMatrix("A", {"K", "M"}, 16, 10, 0.4, 12);
    const Tensor b = randomMatrix("B", {"K", "N"}, 16, 14, 0.15, 13);
    const Tensor s =
        runEinsum(einsum, "", {{"A", a.clone()}, {"B", b.clone()}});
    a.forEachLeaf([&](std::span<const Coord> pa, double va) {
        const auto kpos = b.root()->find(pa[0]);
        const bool row_nonempty = kpos.has_value();
        const std::vector<Coord> p{pa[0], pa[1]};
        EXPECT_DOUBLE_EQ(s.at(p), row_nonempty ? va : 0.0);
    });
}

TEST(Exec, WholeTensorCopy)
{
    const char* einsum = "declaration:\n"
                         "  P0: [V]\n"
                         "  P1: [V]\n"
                         "expressions:\n"
                         "  - P1 = P0\n";
    const Tensor p0 = randomVector("P0", "V", 25, 0.5, 14);
    const Tensor p1 = runEinsum(einsum, "", {{"P0", p0.clone()}});
    EXPECT_TRUE(p1.equals(p0));
    EXPECT_EQ(p1.name(), "P1");
}

TEST(Exec, DirectConvolutionDenseOutput)
{
    // O[q] = I[q+s] * F[s] (paper Eq. 4): Q is dense-driven.
    const char* einsum = "declaration:\n"
                         "  I: [W]\n"
                         "  F: [S]\n"
                         "  O: [Q]\n"
                         "expressions:\n"
                         "  - O[q] = I[q+s] * F[s]\n";
    const Tensor i = randomVector("I", "W", 20, 0.6, 15);
    const Tensor f = randomVector("F", "S", 4, 1.0, 16);
    const Tensor o =
        runEinsum(einsum, "", {{"I", i.clone()}, {"F", f.clone()}});
    // Q = W - S + 1 = 17.
    for (Coord q = 0; q < 17; ++q) {
        double ref = 0;
        for (Coord s = 0; s < 4; ++s) {
            const std::vector<Coord> pi{q + s};
            const std::vector<Coord> pf{s};
            ref += i.at(pi) * f.at(pf);
        }
        const std::vector<Coord> pq{q};
        EXPECT_NEAR(o.at(pq), ref, 1e-9) << "q=" << q;
    }
}

TEST(Exec, ToeplitzCascadeMatchesDirectConv)
{
    // Table 2: T[q,s] = I[q+s]; O[q] = T[q,s] * F[s].
    const char* direct = "declaration:\n"
                         "  I: [W]\n"
                         "  F: [S]\n"
                         "  O: [Q]\n"
                         "expressions:\n"
                         "  - O[q] = I[q+s] * F[s]\n";
    const char* toeplitz = "declaration:\n"
                           "  I: [W]\n"
                           "  F: [S]\n"
                           "  T: [Q, S]\n"
                           "  O: [Q]\n"
                           "expressions:\n"
                           "  - T[q, s] = I[q+s]\n"
                           "  - O[q] = T[q, s] * F[s]\n";
    const Tensor i = randomVector("I", "W", 24, 0.5, 17);
    const Tensor f = randomVector("F", "S", 5, 0.8, 18);
    const Tensor o1 =
        runEinsum(direct, "", {{"I", i.clone()}, {"F", f.clone()}});
    const Tensor o2 =
        runEinsum(toeplitz, "", {{"I", i.clone()}, {"F", f.clone()}},
                  {"T"});
    EXPECT_TRUE(o1.equals(o2, 1e-9));
}

// ------------------------------------------- full paper mappings

const char* kOuterSpaceMapping =
    "rank-order:\n"
    "  A: [K, M]\n"
    "  B: [K, N]\n"
    "  T: [M, K, N]\n"
    "  Z: [M, N]\n"
    "partitioning:\n"
    "  T:\n"
    "    (K, M): [flatten()]\n"
    "    KM: [uniform_occupancy(A.16), uniform_occupancy(A.4)]\n"
    "  Z:\n"
    "    M: [uniform_occupancy(T.8), uniform_occupancy(T.2)]\n"
    "loop-order:\n"
    "  T: [KM2, KM1, KM0, N]\n"
    "  Z: [M2, M1, M0, N, K]\n"
    "spacetime:\n"
    "  T:\n"
    "    space: [KM1, KM0]\n"
    "    time: [KM2, N]\n"
    "  Z:\n"
    "    space: [M1, M0]\n"
    "    time: [M2, N, K]\n";

const char* kOuterSpaceEinsum = "declaration:\n"
                                "  A: [K, M]\n"
                                "  B: [K, N]\n"
                                "  T: [K, M, N]\n"
                                "  Z: [M, N]\n"
                                "expressions:\n"
                                "  - T[k, m, n] = A[k, m] * B[k, n]\n"
                                "  - Z[m, n] = T[k, m, n]\n";

TEST(Exec, OuterSpaceMappedCascadeMatchesReference)
{
    const Tensor a = randomMatrix("A", {"K", "M"}, 24, 20, 0.25, 19);
    const Tensor b = randomMatrix("B", {"K", "N"}, 24, 18, 0.25, 20);
    const Tensor ref = referenceMatmul(a, b, 20, 18);
    const Tensor z =
        runEinsum(kOuterSpaceEinsum, kOuterSpaceMapping,
                  {{"A", a.clone()}, {"B", b.clone()}}, {"T"});
    EXPECT_TRUE(z.equals(ref, 1e-9));
}

const char* kGammaEinsum =
    "declaration:\n"
    "  A: [K, M]\n"
    "  B: [K, N]\n"
    "  T: [K, M, N]\n"
    "  Z: [M, N]\n"
    "expressions:\n"
    "  - T[k, m, n] = take(A[k, m], B[k, n], 1)\n"
    "  - Z[m, n] = T[k, m, n] * A[k, m]\n";

const char* kGammaMapping = "rank-order:\n"
                            "  A: [M, K]\n"
                            "  B: [K, N]\n"
                            "  T: [M, K, N]\n"
                            "  Z: [M, N]\n"
                            "partitioning:\n"
                            "  T:\n"
                            "    M: [uniform_occupancy(A.4)]\n"
                            "    K: [uniform_occupancy(A.8)]\n"
                            "  Z:\n"
                            "    M: [uniform_occupancy(A.4)]\n"
                            "    K: [uniform_occupancy(A.8)]\n"
                            "loop-order:\n"
                            "  T: [M1, M0, K1, K0, N]\n"
                            "  Z: [M1, M0, K1, N, K0]\n"
                            "spacetime:\n"
                            "  T:\n"
                            "    space: [M0, K1]\n"
                            "    time: [M1, K0, N]\n"
                            "  Z:\n"
                            "    space: [M0, K1]\n"
                            "    time: [M1, N, K0]\n";

TEST(Exec, GammaMappedCascadeMatchesReference)
{
    const Tensor a = randomMatrix("A", {"K", "M"}, 20, 16, 0.3, 21);
    const Tensor b = randomMatrix("B", {"K", "N"}, 20, 14, 0.3, 22);
    const Tensor ref = referenceMatmul(a, b, 16, 14);
    const Tensor z = runEinsum(kGammaEinsum, kGammaMapping,
                               {{"A", ft::swizzle(a, {"M", "K"})},
                                {"B", b.clone()}},
                               {"T"});
    EXPECT_TRUE(z.equals(ref, 1e-9));
}

const char* kExTensorEinsum = "declaration:\n"
                              "  A: [K, M]\n"
                              "  B: [K, N]\n"
                              "  Z: [M, N]\n"
                              "expressions:\n"
                              "  - Z[m, n] = A[k, m] * B[k, n]\n";

const char* kExTensorMapping =
    "rank-order:\n"
    "  A: [K, M]\n"
    "  B: [K, N]\n"
    "  Z: [M, N]\n"
    "partitioning:\n"
    "  Z:\n"
    "    K:\n"
    "      - uniform_shape(8)\n"
    "      - uniform_shape(2)\n"
    "    M:\n"
    "      - uniform_shape(6)\n"
    "      - uniform_shape(3)\n"
    "    N:\n"
    "      - uniform_shape(8)\n"
    "      - uniform_shape(4)\n"
    "loop-order:\n"
    "  Z: [N2, K2, M2, M1, N1, K1, M0, N0, K0]\n"
    "spacetime:\n"
    "  Z:\n"
    "    space: [K1]\n"
    "    time: [N2, K2, M2, M1, N1, M0, N0, K0]\n";

TEST(Exec, ExTensorMappedMatchesReference)
{
    const Tensor a = randomMatrix("A", {"K", "M"}, 24, 18, 0.3, 23);
    const Tensor b = randomMatrix("B", {"K", "N"}, 24, 20, 0.3, 24);
    const Tensor ref = referenceMatmul(a, b, 18, 20);
    const Tensor z =
        runEinsum(kExTensorEinsum, kExTensorMapping,
                  {{"A", a.clone()}, {"B", b.clone()}});
    EXPECT_TRUE(z.equals(ref, 1e-9));
}

const char* kSigmaEinsum =
    "declaration:\n"
    "  A: [K, M]\n"
    "  B: [K, N]\n"
    "  S: [K, M]\n"
    "  T: [K, M]\n"
    "  Z: [M, N]\n"
    "expressions:\n"
    "  - S[k, m] = take(A[k, m], B[k, n], 0)\n"
    "  - T[k, m] = take(A[k, m], S[k, m], 0)\n"
    "  - Z[m, n] = T[k, m] * B[k, n]\n";

const char* kSigmaMapping =
    "rank-order:\n"
    "  A: [K, M]\n"
    "  B: [K, N]\n"
    "  S: [K, M]\n"
    "  T: [K, M]\n"
    "  Z: [M, N]\n"
    "partitioning:\n"
    "  Z:\n"
    "    K: [uniform_shape(8)]\n"
    "    (M, K0): [flatten()]\n"
    "    MK0: [uniform_occupancy(T.16)]\n"
    "loop-order:\n"
    "  S: [K, M, N]\n"
    "  T: [K, M]\n"
    "  Z: [K1, MK01, MK00, N]\n"
    "spacetime:\n"
    "  S:\n"
    "    space: []\n"
    "    time: [K, M, N]\n"
    "  T:\n"
    "    space: []\n"
    "    time: [K, M]\n"
    "  Z:\n"
    "    space: [MK00]\n"
    "    time: [K1, MK01, N.coord]\n";

TEST(Exec, SigmaMappedCascadeMatchesReference)
{
    const Tensor a = randomMatrix("A", {"K", "M"}, 24, 15, 0.4, 25);
    const Tensor b = randomMatrix("B", {"K", "N"}, 24, 12, 0.25, 26);
    const Tensor ref = referenceMatmul(a, b, 15, 12);
    const Tensor z = runEinsum(kSigmaEinsum, kSigmaMapping,
                               {{"A", a.clone()}, {"B", b.clone()}},
                               {"S", "T"});
    EXPECT_TRUE(z.equals(ref, 1e-9));
}

TEST(Exec, MinPlusSemiringSssp)
{
    // One SSSP relaxation: R[d] = G[d,s] x P[s] with x=+, +=min.
    const char* einsum = "declaration:\n"
                         "  G: [D, S]\n"
                         "  P: [S]\n"
                         "  R: [D]\n"
                         "expressions:\n"
                         "  - R[d] = G[d, s] * P[s]\n";
    const Tensor g = Tensor::fromCoo(
        "G", {"D", "S"}, {4, 4},
        {{{1, 0}, 2.0}, {{2, 0}, 7.0}, {{2, 1}, 1.0}, {{3, 2}, 3.0}});
    const Tensor p =
        Tensor::fromCoo("P", {"S"}, {4}, {{{0}, 0.5}, {{1}, 4.0}});
    const auto es = einsum::EinsumSpec::parse(yaml::parse(einsum));
    trace::Observer obs;
    std::map<std::string, Tensor> tensors{{"G", g.clone()},
                                          {"P", p.clone()}};
    const auto plan =
        ir::buildPlan(es.expressions[0], es, {}, tensors, {});
    exec::Executor ex(plan, obs, exec::Semiring::minPlus());
    const Tensor r = ex.run();
    const std::vector<Coord> d1{1}, d2{2}, d3{3};
    EXPECT_DOUBLE_EQ(r.at(d1), 2.5);           // 2 + 0.5
    EXPECT_DOUBLE_EQ(r.at(d2), 5.0);           // min(7.5, 5.0)
    EXPECT_DOUBLE_EQ(r.at(d3), 0.0);           // P[2] empty
}

TEST(Exec, MttkrpThreeOperand)
{
    // Tensaurus row of Table 2: C[i,r] = T[i,j,k] * B[j,r] * A[k,r].
    const char* einsum =
        "declaration:\n"
        "  T: [I, J, K]\n"
        "  B: [J, R]\n"
        "  A: [K, R]\n"
        "  C: [I, R]\n"
        "expressions:\n"
        "  - C[i, r] = T[i, j, k] * B[j, r] * A[k, r]\n";
    Xoshiro256 rng(27);
    std::vector<std::pair<std::vector<Coord>, double>> coo;
    for (Coord i = 0; i < 6; ++i)
        for (Coord j = 0; j < 5; ++j)
            for (Coord k = 0; k < 4; ++k)
                if (rng.uniform() < 0.3)
                    coo.push_back({{i, j, k}, 1.0 + rng.uniform()});
    const Tensor t =
        Tensor::fromCoo("T", {"I", "J", "K"}, {6, 5, 4}, coo);
    const Tensor b = randomMatrix("B", {"J", "R"}, 5, 3, 0.7, 28);
    const Tensor a = randomMatrix("A", {"K", "R"}, 4, 3, 0.7, 29);
    const Tensor c = runEinsum(
        einsum, "",
        {{"T", t.clone()}, {"B", b.clone()}, {"A", a.clone()}});
    for (Coord i = 0; i < 6; ++i) {
        for (Coord r = 0; r < 3; ++r) {
            double ref = 0;
            for (Coord j = 0; j < 5; ++j) {
                for (Coord k = 0; k < 4; ++k) {
                    const std::vector<Coord> pt{i, j, k}, pb{j, r},
                        pa{k, r};
                    ref += t.at(pt) * b.at(pb) * a.at(pa);
                }
            }
            const std::vector<Coord> pc{i, r};
            EXPECT_NEAR(c.at(pc), ref, 1e-9);
        }
    }
}

/// Property: the mapped OuterSPACE cascade agrees with the unmapped
/// plain matmul for many random seeds.
class MappedEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(MappedEquivalence, OuterSpaceAgreesWithPlain)
{
    const auto seed = static_cast<std::uint64_t>(GetParam());
    const Tensor a =
        randomMatrix("A", {"K", "M"}, 18, 15, 0.3, 100 + seed);
    const Tensor b =
        randomMatrix("B", {"K", "N"}, 18, 13, 0.3, 200 + seed);
    const Tensor plain = runEinsum(
        kMatmulEinsum, "", {{"A", a.clone()}, {"B", b.clone()}});
    const Tensor mapped =
        runEinsum(kOuterSpaceEinsum, kOuterSpaceMapping,
                  {{"A", a.clone()}, {"B", b.clone()}}, {"T"});
    EXPECT_TRUE(mapped.equals(plain, 1e-9));
}

TEST_P(MappedEquivalence, GammaAgreesWithPlain)
{
    const auto seed = static_cast<std::uint64_t>(GetParam());
    const Tensor a =
        randomMatrix("A", {"K", "M"}, 16, 12, 0.35, 300 + seed);
    const Tensor b =
        randomMatrix("B", {"K", "N"}, 16, 11, 0.35, 400 + seed);
    const Tensor plain = runEinsum(
        kMatmulEinsum, "", {{"A", a.clone()}, {"B", b.clone()}});
    const Tensor mapped = runEinsum(kGammaEinsum, kGammaMapping,
                                    {{"A", ft::swizzle(a, {"M", "K"})},
                                     {"B", b.clone()}},
                                    {"T"});
    EXPECT_TRUE(mapped.equals(plain, 1e-9));
}

TEST_P(MappedEquivalence, SigmaAgreesWithPlain)
{
    const auto seed = static_cast<std::uint64_t>(GetParam());
    const Tensor a =
        randomMatrix("A", {"K", "M"}, 20, 10, 0.4, 500 + seed);
    const Tensor b =
        randomMatrix("B", {"K", "N"}, 20, 9, 0.3, 600 + seed);
    const Tensor plain = runEinsum(
        kMatmulEinsum, "", {{"A", a.clone()}, {"B", b.clone()}});
    const Tensor mapped = runEinsum(kSigmaEinsum, kSigmaMapping,
                                    {{"A", a.clone()}, {"B", b.clone()}},
                                    {"S", "T"});
    EXPECT_TRUE(mapped.equals(plain, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MappedEquivalence,
                         ::testing::Range(0, 6));

} // namespace
} // namespace teaal
