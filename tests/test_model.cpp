/**
 * @file
 * Unit tests for the performance-model building blocks: buffer
 * simulators, fusion-block inference, component timing, and the
 * energy tables.
 */
#include <gtest/gtest.h>

#include "binding/binding.hpp"
#include "energy/energy.hpp"
#include "mapping/mapping.hpp"
#include "model/buffer_sim.hpp"
#include "model/perf.hpp"
#include "yaml/yaml.hpp"

namespace teaal::model
{
namespace
{

// ------------------------------------------------------------ LruCache

TEST(LruCache, HitsAfterFill)
{
    LruCache cache(1024);
    int a, b;
    EXPECT_FALSE(cache.access(&a, 100));
    EXPECT_TRUE(cache.access(&a, 100));
    EXPECT_FALSE(cache.access(&b, 100));
    EXPECT_TRUE(cache.access(&a, 100));
    EXPECT_EQ(cache.counters().hits, 2u);
    EXPECT_EQ(cache.counters().misses, 2u);
    EXPECT_DOUBLE_EQ(cache.counters().fillBytes, 200);
    EXPECT_DOUBLE_EQ(cache.counters().accessBytes, 400);
}

TEST(LruCache, EvictsLeastRecentlyUsed)
{
    LruCache cache(250);
    int a, b, c;
    cache.access(&a, 100);
    cache.access(&b, 100);
    cache.access(&a, 100); // a is now MRU
    cache.access(&c, 100); // evicts b
    EXPECT_TRUE(cache.access(&a, 100));
    EXPECT_TRUE(cache.access(&c, 100));
    EXPECT_FALSE(cache.access(&b, 100)); // b was the victim
}

TEST(LruCache, UnboundedNeverEvicts)
{
    LruCache cache(0);
    int keys[64];
    for (int& k : keys)
        cache.access(&k, 1e6);
    for (int& k : keys)
        EXPECT_TRUE(cache.access(&k, 1e6));
}

TEST(LruCache, ResetForgets)
{
    LruCache cache(1024);
    int a;
    cache.access(&a, 10);
    cache.reset();
    EXPECT_FALSE(cache.access(&a, 10));
}

// -------------------------------------------------------------- Buffet

TEST(Buffet, ReadFillsOncePerResidency)
{
    Buffet buf;
    EXPECT_FALSE(buf.read(1, 64));
    EXPECT_TRUE(buf.read(1, 64));
    EXPECT_DOUBLE_EQ(buf.counters().fillBytes, 64);
    buf.evictAll();
    EXPECT_FALSE(buf.read(1, 64));
    EXPECT_DOUBLE_EQ(buf.counters().fillBytes, 128);
}

TEST(Buffet, WriteDrainsOnEvict)
{
    Buffet buf;
    buf.write(7, 16);
    buf.write(7, 16); // same element: hit
    EXPECT_DOUBLE_EQ(buf.residentBytes(), 16);
    const auto drained = buf.evictAll();
    EXPECT_DOUBLE_EQ(drained.firstBytes, 16);
    EXPECT_DOUBLE_EQ(drained.againBytes, 0);
    EXPECT_DOUBLE_EQ(buf.counters().drainBytes, 16);
}

TEST(Buffet, RevisitAfterDrainIsPartialOutput)
{
    Buffet buf;
    buf.write(7, 16);
    buf.evictAll();
    // The revisit must report a partial-output re-fetch.
    EXPECT_TRUE(buf.write(7, 16));
    const auto drained = buf.evictAll();
    EXPECT_DOUBLE_EQ(drained.firstBytes, 0);
    EXPECT_DOUBLE_EQ(drained.againBytes, 16);
}

TEST(Buffet, ReadsAreDroppedNotDrained)
{
    Buffet buf;
    buf.read(3, 32);
    const auto drained = buf.evictAll();
    EXPECT_DOUBLE_EQ(drained.firstBytes + drained.againBytes, 0);
}

// ------------------------------------------------------- fusion blocks

namespace
{

einsum::EinsumSpec
gammaEinsums()
{
    return einsum::EinsumSpec::parse(yaml::parse(
        "declaration:\n"
        "  A: [K, M]\n"
        "  B: [K, N]\n"
        "  T: [K, M, N]\n"
        "  Z: [M, N]\n"
        "expressions:\n"
        "  - T[k, m, n] = take(A[k, m], B[k, n], 1)\n"
        "  - Z[m, n] = T[k, m, n] * A[k, m]\n"));
}

mapping::MappingSpec
gammaMapping()
{
    return mapping::MappingSpec::parse(yaml::parse(
        "loop-order:\n"
        "  T: [M1, M0, K1, K0, N]\n"
        "  Z: [M1, M0, K1, N, K0]\n"
        "spacetime:\n"
        "  T:\n"
        "    space: [M0, K1]\n"
        "    time: [M1, K0, N]\n"
        "  Z:\n"
        "    space: [M0, K1]\n"
        "    time: [M1, N, K0]\n"));
}

} // namespace

TEST(Fusion, GammaEinsumsFuse)
{
    // Same (empty) topology, equal temporal prefix [M1], disjoint
    // non-storage components -> one block (paper §5 "the two Einsums
    // in the cascade are fused").
    const auto blocks = inferBlocks(gammaEinsums(), gammaMapping(),
                                    binding::BindingSpec());
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(blocks[0], (std::vector<std::size_t>{0, 1}));
}

TEST(Fusion, DifferentTopologiesDoNotFuse)
{
    // OuterSPACE reorganizes between phases: no fusion.
    binding::BindingSpec bindings;
    binding::EinsumBinding t;
    t.topology = "Multiply";
    binding::EinsumBinding z;
    z.topology = "Merge";
    bindings.setEinsum("T", t);
    bindings.setEinsum("Z", z);
    const auto blocks =
        inferBlocks(gammaEinsums(), gammaMapping(), bindings);
    ASSERT_EQ(blocks.size(), 2u);
}

TEST(Fusion, DifferentTemporalPrefixDoesNotFuse)
{
    // Built manually: T's loop order starts [K1, ...] while Z's starts
    // [M1, ...], so the temporal prefixes differ.
    mapping::MappingSpec m2;
    {
        mapping::EinsumMapping t;
        t.loopOrder = {"K1", "M1", "M0", "K0", "N"};
        t.space = {{"M0", false}};
        t.time = {{"K1", false}, {"M1", false}, {"K0", false},
                  {"N", false}};
        mapping::EinsumMapping z;
        z.loopOrder = {"M1", "M0", "K1", "N", "K0"};
        z.space = {{"M0", false}};
        z.time = {{"M1", false}, {"K1", false}, {"N", false},
                  {"K0", false}};
        m2.setEinsum("T", t);
        m2.setEinsum("Z", z);
    }
    const auto blocks =
        inferBlocks(gammaEinsums(), m2, binding::BindingSpec());
    ASSERT_EQ(blocks.size(), 2u);
}

TEST(Fusion, SharedNonStorageComponentDoesNotFuse)
{
    binding::BindingSpec bindings;
    binding::EinsumBinding t;
    binding::ComponentBinding cb;
    cb.component = "ALU";
    cb.ops.push_back({"mul", ""});
    t.components.push_back(cb);
    bindings.setEinsum("T", t);
    bindings.setEinsum("Z", t); // same component bound to both
    const auto blocks =
        inferBlocks(gammaEinsums(), gammaMapping(), bindings);
    ASSERT_EQ(blocks.size(), 2u);
}

// ----------------------------------------------------- componentTimes

TEST(Perf, ComponentTimesUseBandwidthAndClock)
{
    arch::Topology topo;
    topo.name = "X";
    topo.clock = 2e9;
    topo.root.name = "Sys";
    arch::Component dram;
    dram.name = "DRAM0";
    dram.cls = arch::ComponentClass::DRAM;
    dram.attributes["bandwidth"] = "100"; // GB/s
    topo.root.local.push_back(dram);
    arch::Component alu;
    alu.name = "ALU";
    alu.cls = arch::ComponentClass::Compute;
    topo.root.local.push_back(alu);

    EinsumRecord record;
    record.clock = topo.clock;
    ComponentActions& d = record.components["DRAM0"];
    d.name = "DRAM0";
    d.cls = arch::ComponentClass::DRAM;
    d.counts["read_bytes"] = 50e9;
    d.counts["write_bytes"] = 50e9;
    ComponentActions& a = record.components["ALU"];
    a.name = "ALU";
    a.cls = arch::ComponentClass::Compute;
    a.perPe[0] = 4e9;

    const auto times = componentTimes(record, topo);
    EXPECT_DOUBLE_EQ(times.at("DRAM0"), 1.0); // 100 GB over 100 GB/s
    EXPECT_DOUBLE_EQ(times.at("ALU"), 2.0);   // 4e9 cycles at 2 GHz
}

TEST(Perf, AnalyzePicksBottleneckAndSumsBlocks)
{
    arch::ArchSpec arch_spec;
    arch::Topology topo;
    topo.name = "X";
    topo.clock = 1e9;
    topo.root.name = "Sys";
    arch::Component dram;
    dram.name = "DRAM0";
    dram.cls = arch::ComponentClass::DRAM;
    dram.attributes["bandwidth"] = "1";
    topo.root.local.push_back(dram);
    arch_spec.add(topo);

    EinsumRecord r1;
    r1.output = "T";
    r1.topologyName = "X";
    r1.clock = 1e9;
    r1.components["DRAM0"].name = "DRAM0";
    r1.components["DRAM0"].cls = arch::ComponentClass::DRAM;
    r1.components["DRAM0"].counts["read_bytes"] = 1e9; // 1 s
    EinsumRecord r2 = r1;
    r2.output = "Z";
    r2.components["DRAM0"].counts["read_bytes"] = 2e9; // 2 s

    // Separate blocks: total = 3 s.
    auto perf = analyze({r1, r2}, arch_spec, {{0}, {1}});
    EXPECT_DOUBLE_EQ(perf.totalSeconds, 3.0);
    EXPECT_EQ(perf.einsums[0].bottleneck, "DRAM0");
    // Fused: component sums -> still 3 s for a shared DRAM.
    perf = analyze({r1, r2}, arch_spec, {{0, 1}});
    EXPECT_DOUBLE_EQ(perf.totalSeconds, 3.0);
    EXPECT_EQ(perf.blocks[0].bottleneck, "DRAM0");
}

// --------------------------------------------------------------- energy

TEST(Energy, DramDominatesForTrafficHeavyRecords)
{
    arch::Topology topo;
    topo.name = "X";
    topo.root.name = "Sys";
    arch::Component dram;
    dram.name = "DRAM0";
    dram.cls = arch::ComponentClass::DRAM;
    topo.root.local.push_back(dram);
    arch::Component alu;
    alu.name = "ALU";
    alu.cls = arch::ComponentClass::Compute;
    topo.root.local.push_back(alu);

    EinsumRecord record;
    record.components["DRAM0"].name = "DRAM0";
    record.components["DRAM0"].cls = arch::ComponentClass::DRAM;
    record.components["DRAM0"].counts["read_bytes"] = 1e6;
    record.components["ALU"].name = "ALU";
    record.components["ALU"].cls = arch::ComponentClass::Compute;
    record.components["ALU"].counts["mul_ops"] = 1e6;

    const auto breakdown = energy::energyOf(record, topo);
    EXPECT_GT(breakdown.totalJoules, 0);
    EXPECT_GT(breakdown.byComponent.at("DRAM0"),
              breakdown.byComponent.at("ALU"));
}

TEST(Energy, BufferEnergyScalesWithCapacityClass)
{
    arch::Topology topo;
    topo.name = "X";
    topo.root.name = "Sys";
    arch::Component small;
    small.name = "SmallBuf";
    small.cls = arch::ComponentClass::Buffer;
    small.attributes["size"] = "1024";
    arch::Component large;
    large.name = "LargeBuf";
    large.cls = arch::ComponentClass::Buffer;
    large.attributes["size"] = "33554432";
    topo.root.local.push_back(small);
    topo.root.local.push_back(large);

    EinsumRecord record;
    for (const char* name : {"SmallBuf", "LargeBuf"}) {
        record.components[name].name = name;
        record.components[name].cls = arch::ComponentClass::Buffer;
        record.components[name].counts["access_bytes"] = 1e6;
    }
    const auto breakdown = energy::energyOf(record, topo);
    EXPECT_GT(breakdown.byComponent.at("LargeBuf"),
              breakdown.byComponent.at("SmallBuf"));
}

TEST(Energy, BreakdownAccumulates)
{
    energy::EnergyBreakdown a, b;
    a.byComponent["X"] = 1.0;
    a.totalJoules = 1.0;
    b.byComponent["X"] = 2.0;
    b.byComponent["Y"] = 3.0;
    b.totalJoules = 5.0;
    a += b;
    EXPECT_DOUBLE_EQ(a.totalJoules, 6.0);
    EXPECT_DOUBLE_EQ(a.byComponent["X"], 3.0);
    EXPECT_DOUBLE_EQ(a.byComponent["Y"], 3.0);
}

} // namespace
} // namespace teaal::model
