/**
 * @file
 * Failpoint-driven fault injection (util/failpoint.hpp). The registry
 * and spec grammar are compiled in every configuration, so those
 * tests always run; tests that need the *sites* (the TEAAL_FAILPOINT
 * macros in the engine, executor, pipeline, mtx reader, and serving
 * daemon) skip unless the build was configured with
 * -DTEAAL_FAILPOINTS=ON — the dedicated CI job runs them.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "accelerators/accelerators.hpp"
#include "compiler/pipeline.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "storage/packed.hpp"
#include "storage/store.hpp"
#include "util/cancel.hpp"
#include "util/failpoint.hpp"
#include "workloads/datasets.hpp"
#include "workloads/mtx.hpp"

namespace teaal
{
namespace
{

namespace fp = util::failpoint;
using compiler::RunOptions;
using compiler::Workload;
using serve::Json;
using serve::parseJson;

#ifdef TEAAL_FAILPOINTS_ENABLED
#define TEAAL_REQUIRE_SITES() ((void)0)
#else
#define TEAAL_REQUIRE_SITES()                                          \
    GTEST_SKIP()                                                       \
        << "failpoint sites not compiled (TEAAL_FAILPOINTS=OFF)"
#endif

class Failpoints : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        fp::clearAll();
    }
};

// -------------------------------------- registry + grammar (always)

TEST_F(Failpoints, SpecGrammarParsesActionsAndModifiers)
{
    fp::setFromSpec("a.point", "error(boom happened)");
    fp::setFromSpec("b.point", "delay(2.5)+skip(3)");
    fp::setFromSpec("c.point", "trig+skip(1)*4");
    const std::vector<std::string> names = fp::activeNames();
    EXPECT_EQ(names,
              (std::vector<std::string>{"a.point", "b.point",
                                        "c.point"}));

    fp::setFromSpec("b.point", "off"); // disarm via spec
    EXPECT_EQ(fp::activeNames().size(), 2u);
    fp::clear("a.point");
    fp::clearAll();
    EXPECT_TRUE(fp::activeNames().empty());
}

TEST_F(Failpoints, MalformedSpecsAreStructuredErrors)
{
    EXPECT_THROW(fp::setFromSpec("x", "explode"), DiagnosticError);
    EXPECT_THROW(fp::setFromSpec("x", "error(unclosed"),
                 DiagnosticError);
    EXPECT_THROW(fp::setFromSpec("x", "delay(soon)"), DiagnosticError);
    EXPECT_THROW(fp::setFromSpec("x", "trig+skip(n)"),
                 DiagnosticError);
    EXPECT_THROW(fp::setFromSpec("x", "trig*"), DiagnosticError);
    EXPECT_TRUE(fp::activeNames().empty());
}

TEST_F(Failpoints, EnvVarArmsMultiplePoints)
{
    ::setenv("TEAAL_FAILPOINTS_TEST",
             "one.point=trig;two.point=delay(1)+skip(2)", 1);
    EXPECT_EQ(fp::configureFromEnv("TEAAL_FAILPOINTS_TEST"), 2u);
    EXPECT_EQ(fp::activeNames().size(), 2u);

    ::setenv("TEAAL_FAILPOINTS_TEST", "bad point no equals", 1);
    EXPECT_THROW(fp::configureFromEnv("TEAAL_FAILPOINTS_TEST"),
                 DiagnosticError);
    ::unsetenv("TEAAL_FAILPOINTS_TEST");
    EXPECT_EQ(fp::configureFromEnv("TEAAL_FAILPOINTS_TEST"), 0u);
}

// ----------------------------------------------- mtx reader (sites)

class FailpointsMtx : public Failpoints
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               "teaal_failpoint_mtx";
        std::filesystem::create_directories(dir_);
        path_ = (dir_ / "a.mtx").string();
        workloads::writeMatrixMarket(
            path_, workloads::uniformMatrix("A", 16, 16, 40, 5,
                                            {"K", "M"}));
    }

    void
    TearDown() override
    {
        Failpoints::TearDown();
        std::filesystem::remove_all(dir_);
    }

    std::filesystem::path dir_;
    std::string path_;
};

TEST_F(FailpointsMtx, ErrorProgramInjectsIoFailure)
{
    TEAAL_REQUIRE_SITES();
    fp::setFromSpec("workloads.mtx.io_error",
                    "error(injected io failure)");
    try {
        workloads::readMatrixMarket(path_, "A", {"K", "M"});
        FAIL() << "expected injected DiagnosticError";
    } catch (const DiagnosticError& e) {
        EXPECT_EQ(e.diagnostic().section, "failpoint");
        EXPECT_NE(e.diagnostic().message.find("injected io failure"),
                  std::string::npos);
    }
    fp::clearAll();
    EXPECT_NO_THROW(workloads::readMatrixMarket(path_, "A", {"K", "M"}));
}

TEST_F(FailpointsMtx, SkipAndLimitModifiersGateFiring)
{
    TEAAL_REQUIRE_SITES();
    // Skip the first hit, fire once, then fall silent.
    fp::setFromSpec("workloads.mtx.io_error", "error(boom)+skip(1)*1");
    EXPECT_NO_THROW(workloads::readMatrixMarket(path_, "A", {"K", "M"}));
    EXPECT_THROW(workloads::readMatrixMarket(path_, "A", {"K", "M"}),
                 DiagnosticError);
    EXPECT_NO_THROW(workloads::readMatrixMarket(path_, "A", {"K", "M"}));
    EXPECT_EQ(fp::hitCount("workloads.mtx.io_error"), 3u);
}

// ------------------------------------- engine + pipeline (sites)

Workload
smallWorkload(ft::Tensor& a, ft::Tensor& b)
{
    a = workloads::uniformMatrix("A", 40, 32, 300, 61, {"K", "M"});
    b = workloads::uniformMatrix("B", 40, 36, 300, 62, {"K", "N"});
    Workload w;
    w.add("A", a).add("B", b);
    return w;
}

TEST_F(Failpoints, DelayProgramMakesDeadlineFireMidRun)
{
    TEAAL_REQUIRE_SITES();
    ft::Tensor a, b;
    const Workload w = smallWorkload(a, b);
    auto model = compiler::compile(accel::gamma());

    // Every co-iteration walk sleeps 5 ms, so a 1 ms deadline is
    // deterministically exceeded mid-run — no machine-speed
    // assumptions, exactly how the CI job drives this suite.
    fp::setFromSpec("exec.engine.walk", "delay(5)");
    RunOptions opts;
    opts.threads = 1;
    opts.deadline = util::Deadline::in(1.0);
    try {
        model.run(w, opts);
        FAIL() << "expected deadline CancelledError";
    } catch (const util::CancelledError& e) {
        EXPECT_EQ(e.reason(), util::CancelReason::Deadline);
        EXPECT_GT(e.elapsedMs(), 0.0);
        EXPECT_FALSE(e.position().empty());
    }
}

TEST_F(Failpoints, WorkerErrorsSurfaceAsDiagnosticsNotTerminate)
{
    TEAAL_REQUIRE_SITES();
    ft::Tensor a, b;
    const Workload w = smallWorkload(a, b);
    auto model = compiler::compile(accel::gamma());

    fp::setFromSpec("exec.executor.slice",
                    "error(injected slice failure)");
    RunOptions opts;
    opts.threads = 4;
    try {
        model.run(w, opts);
        FAIL() << "expected injected worker DiagnosticError";
    } catch (const DiagnosticError& e) {
        EXPECT_NE(std::string(e.what()).find("injected slice failure"),
                  std::string::npos);
    }
    // The executor drained its workers before unwinding; the model
    // runs cleanly once the fault is lifted.
    fp::clearAll();
    EXPECT_NO_THROW(model.run(w, opts));
}

TEST_F(Failpoints, PlanInstantiationFailureLeavesCacheClean)
{
    TEAAL_REQUIRE_SITES();
    ft::Tensor a, b;
    const Workload w = smallWorkload(a, b);
    auto model = compiler::compile(accel::gamma());

    fp::setFromSpec("compiler.pipeline.instantiate", "error(no plan)");
    RunOptions opts;
    EXPECT_THROW(model.run(w, opts), DiagnosticError);
    const compiler::PlanCacheStats dropped = model.planCacheStats();
    EXPECT_EQ(dropped.entries, 0u);
    EXPECT_GE(dropped.evictions, 1u);

    fp::clearAll();
    EXPECT_NO_THROW(model.run(w, opts));
    EXPECT_EQ(model.planCacheStats().entries, 1u);
}

// ------------------------------------------------ serving (sites)

class FailpointsServe : public Failpoints
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               "teaal_failpoint_serve";
        std::filesystem::create_directories(dir_);
        aPath_ = (dir_ / "a.mtx").string();
        bPath_ = (dir_ / "b.mtx").string();
        workloads::writeMatrixMarket(
            aPath_, workloads::uniformMatrix("A", 48, 40, 250, 7,
                                             {"K", "M"}));
        workloads::writeMatrixMarket(
            bPath_, workloads::uniformMatrix("B", 48, 44, 250, 8,
                                             {"K", "N"}));
    }

    void
    TearDown() override
    {
        Failpoints::TearDown();
        std::filesystem::remove_all(dir_);
    }

    static std::string
    loadLine(const std::string& path, const std::string& name,
             const std::string& col)
    {
        return R"({"op":"load_dataset","path":")" + path +
               R"(","name":")" + name + R"(","rank_ids":["K",")" +
               col + R"("]})";
    }

    std::filesystem::path dir_;
    std::string aPath_, bPath_;
};

TEST_F(FailpointsServe, AdmissionOverloadInjectionShedsOnce)
{
    TEAAL_REQUIRE_SITES();
    serve::Server server;
    const Json compiled = parseJson(
        server.handleLine(R"({"op":"compile","accel":"gamma"})"));
    const std::string model = compiled.find("model")->str();
    const std::string da = parseJson(server.handleLine(
                               loadLine(aPath_, "A", "M")))
                               .find("dataset")
                               ->str();
    const std::string db = parseJson(server.handleLine(
                               loadLine(bPath_, "B", "N")))
                               .find("dataset")
                               ->str();
    const std::string evaluate =
        R"({"op":"evaluate","model":")" + model +
        R"(","bindings":{"A":")" + da + R"(","B":")" + db + R"("}})";

    fp::setFromSpec("serve.admission.overload", "trig*1");
    const Json shed = parseJson(server.handleLine(evaluate));
    ASSERT_NE(shed.find("error"), nullptr) << shed.dump();
    EXPECT_EQ(shed.find("error")->find("code")->str(), "overloaded");
    // The injected shed consumed the program: the retry succeeds.
    const Json retried = parseJson(server.handleLine(evaluate));
    EXPECT_TRUE(retried.find("ok")->boolean()) << retried.dump();
}

TEST_F(FailpointsServe, InflightEvictionAnsweredAndRecoveredByRetry)
{
    TEAAL_REQUIRE_SITES();
    serve::Server server;
    server.start();
    serve::Client client;
    client.connect(server.port());

    const Json compiled = client.request(
        parseJson(R"({"op":"compile","accel":"gamma"})"));
    const std::string model = compiled.find("model")->str();
    const std::string da =
        client.request(parseJson(loadLine(aPath_, "A", "M")))
            .find("dataset")
            ->str();
    const std::string db =
        client.request(parseJson(loadLine(bPath_, "B", "N")))
            .find("dataset")
            ->str();
    Json evaluate = parseJson(
        R"({"op":"evaluate","model":")" + model +
        R"(","bindings":{"A":")" + da + R"(","B":")" + db + R"("}})");

    // The model lookup inside the next evaluate evicts the model
    // as-if under memory pressure — once.
    fp::setFromSpec("serve.registry.evict_inflight", "trig*1");

    serve::RetryPolicy policy;
    policy.maxAttempts = 3;
    policy.baseDelayMs = 1.0;
    policy.seed = 7;
    unsigned retried_evicted = 0;
    policy.onRetry = [&](const std::string& code, Json& request) {
        if (code != "evicted")
            return true;
        ++retried_evicted;
        // Recovery path: re-register the evicted model, then point
        // the retried request at the fresh id.
        const Json recompiled = client.request(
            parseJson(R"({"op":"compile","accel":"gamma"})"));
        request.set("model",
                    Json::makeString(recompiled.find("model")->str()));
        return true;
    };

    unsigned attempts = 0;
    const Json response =
        client.requestWithRetry(evaluate, policy, &attempts);
    EXPECT_TRUE(response.find("ok")->boolean()) << response.dump();
    EXPECT_EQ(attempts, 2u);
    EXPECT_EQ(retried_evicted, 1u);
    EXPECT_GE(server.registry().stats().evictions, 1u);

    client.close();
    server.stop();
}

// ------------------------------------- store + spill (sites, PR 10)

class FailpointsStore : public Failpoints
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               "teaal_failpoint_store";
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
        path_ = (dir_ / "a.teaal").string();
        storage::writeStore(
            path_, storage::PackedTensor::fromTensor(
                       workloads::uniformMatrix("A", 16, 16, 40, 5,
                                                {"K", "M"})));
    }

    void
    TearDown() override
    {
        Failpoints::TearDown();
        std::filesystem::remove_all(dir_);
    }

    std::filesystem::path dir_;
    std::string path_;
};

TEST_F(FailpointsStore, MapFailureIsStructuredAndRecoverable)
{
    TEAAL_REQUIRE_SITES();
    fp::setFromSpec("storage.store.map", "trig*1");
    try {
        (void)storage::mapStore(path_);
        FAIL() << "expected injected mmap DiagnosticError";
    } catch (const DiagnosticError& e) {
        EXPECT_EQ(e.diagnostic().section, "store");
        EXPECT_EQ(e.diagnostic().key, path_);
        EXPECT_NE(e.diagnostic().message.find("mmap failed"),
                  std::string::npos);
    }
    // The program is consumed; the same path maps cleanly after.
    const storage::PackedTensor t = storage::mapStore(path_);
    EXPECT_TRUE(t.mapped());
    EXPECT_EQ(t.nnz(), 40u);
}

TEST_F(FailpointsStore, CorruptionInjectionTripsTheChecksumPath)
{
    TEAAL_REQUIRE_SITES();
    // The file on disk is pristine; the failpoint forces the header
    // checksum comparison to report corruption, proving the
    // error path (and its cleanup of the mapping) without crafting
    // a byte-level corruption.
    fp::setFromSpec("storage.store.corrupt", "trig");
    try {
        (void)storage::mapStore(path_);
        FAIL() << "expected injected corruption DiagnosticError";
    } catch (const DiagnosticError& e) {
        EXPECT_EQ(e.diagnostic().section, "store");
        EXPECT_NE(e.diagnostic().message.find("checksum mismatch"),
                  std::string::npos);
    }
    fp::clearAll();
    EXPECT_NO_THROW((void)storage::mapStore(path_, true));
}

TEST_F(FailpointsStore, SpillWriteErrorCleansUpAndRerunsIdentical)
{
    TEAAL_REQUIRE_SITES();
    ft::Tensor a, b;
    const Workload w = smallWorkload(a, b);
    auto model = compiler::compile(accel::gamma());

    // Clean reference: resident sharded run.
    RunOptions opts;
    opts.threads = 4;
    const compiler::SimulationResult reference = model.run(w, opts);

    const std::string spill_dir = (dir_ / "spill").string();
    std::filesystem::create_directories(spill_dir);
    opts.spillDir = spill_dir;
    opts.spillSegmentBytes = 4096; // force frames

    fp::setFromSpec("trace.spill.write_error", "trig");
    try {
        model.run(w, opts);
        FAIL() << "expected injected spill-write DiagnosticError";
    } catch (const DiagnosticError& e) {
        EXPECT_EQ(e.diagnostic().section, "spill");
        EXPECT_NE(e.diagnostic().message.find("write failed"),
                  std::string::npos);
    }
    // Failed writers unlinked their segments on unwind.
    EXPECT_TRUE(std::filesystem::is_empty(spill_dir));

    // Lift the fault: the spilled rerun matches the clean reference.
    fp::clearAll();
    const compiler::SimulationResult rerun = model.run(w, opts);
    ASSERT_EQ(rerun.records.size(), reference.records.size());
    for (std::size_t i = 0; i < rerun.records.size(); ++i) {
        EXPECT_TRUE(rerun.records[i].execStats ==
                    reference.records[i].execStats);
        EXPECT_EQ(rerun.records[i].traceEvents,
                  reference.records[i].traceEvents);
    }
    for (const auto& [name, t] : reference.tensors) {
        const auto it = rerun.tensors.find(name);
        ASSERT_NE(it, rerun.tensors.end()) << name;
        EXPECT_TRUE(t.equals(it->second)) << name;
    }
    EXPECT_GT(rerun.spill.frames, 0u);
    EXPECT_TRUE(std::filesystem::is_empty(spill_dir));
}

} // namespace
} // namespace teaal
