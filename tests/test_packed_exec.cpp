/**
 * @file
 * Packed-vs-pointer execution equivalence: a workload bound as packed
 * rank stores (storage/packed.hpp) must produce byte-identical
 * results, counters, traffic, and delivered trace streams (batch
 * boundaries included) to the same workload bound as pointer
 * fibertrees — per Table 1 accelerator, at threads = 1 and 4. Plus
 * the zero-copy/zero-fiber-construction guarantees of the packed
 * concordant bind path, the discordant/partitioned fallbacks, and the
 * unknown-format-config compile diagnostic.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "accelerators/accelerators.hpp"
#include "compiler/pipeline.hpp"
#include "storage/packed.hpp"
#include "util/diagnostic.hpp"
#include "workloads/datasets.hpp"

namespace teaal
{
namespace
{

using compiler::CompiledModel;
using compiler::RunOptions;
using compiler::SimulationResult;
using compiler::Workload;

accel::GammaConfig
smallGamma()
{
    accel::GammaConfig cfg;
    cfg.pes = 4;
    cfg.rowChunk = 4;
    cfg.kChunk = 8;
    cfg.fiberCacheBytes = 64 * 1024;
    return cfg;
}

accel::ExTensorConfig
smallExTensor()
{
    accel::ExTensorConfig cfg;
    cfg.pes = 4;
    cfg.tileK1 = 16;
    cfg.tileK0 = 4;
    cfg.tileM1 = 16;
    cfg.tileM0 = 4;
    cfg.tileN1 = 16;
    cfg.tileN0 = 4;
    cfg.llcBytes = 256 * 1024;
    return cfg;
}

accel::OuterSpaceConfig
smallOuterSpace()
{
    accel::OuterSpaceConfig cfg;
    cfg.chunkOuter = 32;
    cfg.chunkInner = 8;
    cfg.mergeChunkOuter = 16;
    cfg.mergeChunkInner = 4;
    return cfg;
}

accel::SigmaConfig
smallSigma()
{
    accel::SigmaConfig cfg;
    cfg.kTile = 16;
    cfg.stationaryChunk = 64;
    return cfg;
}

struct TestMatrices
{
    ft::Tensor a;
    ft::Tensor b;
};

TestMatrices
makeMatrices(std::uint64_t seed)
{
    return {workloads::uniformMatrix("A", 40, 32, 300, seed, {"K", "M"}),
            workloads::uniformMatrix("B", 40, 36, 300, seed + 1,
                                     {"K", "N"})};
}

/** Semantic stream log (no pointers), batch boundaries included, so
 *  packed and pointer runs can be compared for identical delivery. */
class StreamRecorder : public trace::Observer
{
  public:
    std::vector<std::string> log;

    void
    onEventBatch(const trace::EventBatch& batch) override
    {
        log.push_back("batch:" + std::to_string(batch.size()));
        trace::Observer::onEventBatch(batch); // replay per-event below
    }

    void
    onLoopEnter(std::size_t loop, ft::Coord c) override
    {
        add("L", loop, c);
    }
    void
    onCoIterate(std::size_t loop, std::size_t steps, std::size_t matches,
                std::size_t drivers, std::uint64_t pe) override
    {
        add("I", loop, steps, matches, drivers, pe);
    }
    void
    onCoordScan(int input, std::size_t level, std::size_t count,
                std::uint64_t pe) override
    {
        add("S", input, level, count, pe);
    }
    void
    onTensorAccess(int input, const std::string& tensor,
                   std::size_t level, ft::Coord c, const void* key,
                   const ft::Payload* payload, std::uint64_t pe) override
    {
        (void)key;
        (void)payload;
        add("A", input, level, c, pe);
        log.back() += ":" + tensor;
    }
    void
    onOutputWrite(const std::string& tensor, std::size_t level,
                  ft::Coord c, std::uint64_t path_key, bool inserted,
                  bool at_leaf, std::uint64_t pe) override
    {
        add("W", level, c, path_key, inserted, at_leaf, pe);
        log.back() += ":" + tensor;
    }
    void
    onCompute(char op, std::uint64_t pe, std::size_t count) override
    {
        add("C", op, pe, count);
    }
    void
    onSwizzle(const std::string& tensor, std::size_t elements,
              std::size_t ways, bool online) override
    {
        add("Z", elements, ways, online);
        log.back() += ":" + tensor;
    }
    void
    onTensorCopy(const std::string& from, const std::string& to,
                 std::size_t elements) override
    {
        add("Y", elements);
        log.back() += ":" + from + ">" + to;
    }

  private:
    template <typename... Args>
    void
    add(const char* tag, Args... args)
    {
        std::ostringstream os;
        os << tag;
        ((os << ':' << args), ...);
        log.push_back(os.str());
    }
};

void
expectSameResults(const SimulationResult& x, const SimulationResult& y)
{
    ASSERT_EQ(x.records.size(), y.records.size());
    for (std::size_t i = 0; i < x.records.size(); ++i) {
        EXPECT_TRUE(x.records[i].execStats == y.records[i].execStats)
            << "einsum " << i;
        EXPECT_EQ(x.records[i].traceEvents, y.records[i].traceEvents)
            << "einsum " << i;
        EXPECT_EQ(x.records[i].traceBatches, y.records[i].traceBatches)
            << "einsum " << i;
        ASSERT_EQ(x.records[i].traffic.size(),
                  y.records[i].traffic.size());
        for (const auto& [tensor, tt] : x.records[i].traffic) {
            const auto it = y.records[i].traffic.find(tensor);
            ASSERT_NE(it, y.records[i].traffic.end()) << tensor;
            EXPECT_DOUBLE_EQ(tt.readBytes, it->second.readBytes)
                << tensor;
            EXPECT_DOUBLE_EQ(tt.writeBytes, it->second.writeBytes)
                << tensor;
            EXPECT_DOUBLE_EQ(tt.poBytes, it->second.poBytes) << tensor;
        }
    }
    EXPECT_DOUBLE_EQ(x.perf.totalSeconds, y.perf.totalSeconds);
    EXPECT_DOUBLE_EQ(x.energy.totalJoules, y.energy.totalJoules);
    ASSERT_EQ(x.tensors.size(), y.tensors.size());
    for (const auto& [name, t] : x.tensors) {
        const auto it = y.tensors.find(name);
        ASSERT_NE(it, y.tensors.end()) << name;
        EXPECT_TRUE(t.equals(it->second)) << name;
    }
}

/**
 * Run @p spec on the same matrices bound as pointer tensors and as
 * packed stores (packed per the spec's declared formats) at the given
 * thread count; everything delivered must be identical.
 */
void
expectPackedEquivalence(compiler::Specification spec, unsigned threads,
                        std::uint64_t seed)
{
    const TestMatrices m = makeMatrices(seed);
    auto model = compiler::compile(std::move(spec));

    const auto packedA = storage::PackedTensor::fromTensor(
        m.a, model.spec().formats.getLenient("A"));
    const auto packedB = storage::PackedTensor::fromTensor(
        m.b, model.spec().formats.getLenient("B"));

    Workload pointer_w;
    pointer_w.add("A", m.a).add("B", m.b);
    Workload packed_w;
    packed_w.add("A", packedA).add("B", packedB);

    StreamRecorder pointer_rec;
    RunOptions opts;
    opts.threads = threads;
    opts.observers = {&pointer_rec};
    const SimulationResult base = model.run(pointer_w, opts);

    StreamRecorder packed_rec;
    opts.observers = {&packed_rec};
    const SimulationResult packed = model.run(packed_w, opts);

    expectSameResults(base, packed);
    EXPECT_EQ(pointer_rec.log, packed_rec.log);
}

class PackedAccelerators
    : public ::testing::TestWithParam<std::tuple<std::string, unsigned>>
{
};

TEST_P(PackedAccelerators, MatchesPointerExecution)
{
    const auto& [name, threads] = GetParam();
    if (name == "gamma") {
        expectPackedEquivalence(accel::gamma(smallGamma()), threads, 11);
    } else if (name == "extensor") {
        expectPackedEquivalence(accel::extensor(smallExTensor()),
                                threads, 12);
    } else if (name == "outerspace") {
        expectPackedEquivalence(accel::outerSpace(smallOuterSpace()),
                                threads, 13);
    } else {
        expectPackedEquivalence(accel::sigma(smallSigma()), threads, 14);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Table1, PackedAccelerators,
    ::testing::Combine(::testing::Values("gamma", "extensor",
                                         "outerspace", "sigma"),
                       ::testing::Values(1u, 4u)),
    [](const auto& info) {
        return std::get<0>(info.param) + "_t" +
               std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------------------------
// A concordant spec with no partitioning: the packed fast path binds
// directly, walks packed buffers, and never builds an input fiber.
// ------------------------------------------------------------------

const char* kConcordantSpmSpm = R"(
einsum:
  declaration:
    A: [K, M]
    B: [K, N]
    Z: [M, N]
  expressions:
    - Z[m, n] = A[k, m] * B[k, n]
mapping:
  rank-order:
    A: [M, K]
    B: [K, N]
    Z: [M, N]
  loop-order:
    Z: [M, K, N]
  spacetime:
    Z:
      space: [M]
      time: [K, N]
)";

/** A/B in the mapping's rank order, built directly as packed stores
 *  (streaming builder — no fibertree ever exists for them). */
struct PackedPair
{
    storage::PackedTensor a;
    storage::PackedTensor b;
};

PackedPair
buildPackedInputs(std::uint64_t seed)
{
    // Materialize the COO through temporary tensors for value
    // generation only; the workload under test gets independent
    // packed stores built by streaming appends.
    const ft::Tensor a =
        workloads::uniformMatrix("A", 48, 40, 400, seed, {"M", "K"});
    const ft::Tensor b = workloads::uniformMatrix("B", 40, 44, 420,
                                                  seed + 1, {"K", "N"});
    PackedPair out{storage::PackedTensor::fromTensor(a),
                   storage::PackedTensor::fromTensor(b)};
    return out;
}

TEST(PackedBinding, ConcordantInputsBindWithoutClonesOrFibers)
{
    // Bind two packed workloads of very different nnz and measure the
    // pointer-fiber constructions each bind performs: the deltas must
    // be equal (a fixed handful of empty rank-skeleton roots) — i.e.
    // zero per-element fiber construction — and clone-free.
    auto model =
        compiler::compile(compiler::Specification::parse(kConcordantSpmSpm));
    const PackedPair in = buildPackedInputs(21);
    const ft::Tensor big_a =
        workloads::uniformMatrix("A", 192, 160, 6000, 31, {"M", "K"});
    const ft::Tensor big_b =
        workloads::uniformMatrix("B", 160, 176, 6400, 32, {"K", "N"});
    const PackedPair big{storage::PackedTensor::fromTensor(big_a),
                         storage::PackedTensor::fromTensor(big_b)};

    auto bind_delta = [&](const PackedPair& pair,
                          std::uint64_t& clones) {
        Workload w;
        w.add("A", pair.a).add("B", pair.b);
        const std::uint64_t clones_before = ft::Tensor::cloneCount();
        const std::uint64_t fibers_before =
            ft::Fiber::constructionCount();
        const auto& plans = model.plans(w);
        EXPECT_EQ(plans.size(), 1u);
        EXPECT_NE(plans[0].inputs[0].packed, nullptr);
        EXPECT_NE(plans[0].inputs[1].packed, nullptr);
        // Walk variants recorded: all ranks are C-format by default.
        EXPECT_EQ(plans[0].loops[0].packedWalk, ir::PackedWalk::Coords);
        clones = ft::Tensor::cloneCount() - clones_before;
        return ft::Fiber::constructionCount() - fibers_before;
    };

    std::uint64_t clones_small = 0;
    std::uint64_t clones_big = 0;
    const std::uint64_t fibers_small = bind_delta(in, clones_small);
    const std::uint64_t fibers_big = bind_delta(big, clones_big);
    EXPECT_EQ(clones_small, 0u);
    EXPECT_EQ(clones_big, 0u);
    EXPECT_EQ(fibers_small, fibers_big);
    EXPECT_LE(fibers_small, 8u);

    // The packed run matches the pointer run bit for bit.
    Workload w;
    w.add("A", in.a).add("B", in.b);
    Workload pw;
    pw.add("A", in.a.toTensor()).add("B", in.b.toTensor());
    StreamRecorder packed_rec;
    StreamRecorder pointer_rec;
    RunOptions opts;
    opts.observers = {&packed_rec};
    const SimulationResult packed = model.run(w, opts);
    opts.observers = {&pointer_rec};
    const SimulationResult base = model.run(pw, opts);
    expectSameResults(base, packed);
    EXPECT_EQ(pointer_rec.log, packed_rec.log);
}

TEST(PackedBinding, ShardedPackedExecutionMatchesSerial)
{
    auto model =
        compiler::compile(compiler::Specification::parse(kConcordantSpmSpm));
    const PackedPair in = buildPackedInputs(22);
    Workload w;
    w.add("A", in.a).add("B", in.b);

    StreamRecorder serial_rec;
    RunOptions opts;
    opts.observers = {&serial_rec};
    opts.threads = 1;
    const SimulationResult serial = model.run(w, opts);

    StreamRecorder sharded_rec;
    opts.observers = {&sharded_rec};
    opts.threads = 4;
    const SimulationResult sharded = model.run(w, opts);

    expectSameResults(serial, sharded);
    EXPECT_EQ(serial_rec.log, sharded_rec.log);
}

TEST(PackedBinding, DenseDriveOverrideProbesPackedViews)
{
    // Force the dense coordinate drive so every coordinate probes the
    // packed views through FiberView::find (the bitmap/implicit probe
    // paths when the format says B/U).
    for (const char* fmt_type : {"C", "U", "B"}) {
        auto model = compiler::compile(
            compiler::Specification::parse(kConcordantSpmSpm));
        const PackedPair plain = buildPackedInputs(23);
        fmt::TensorFormat tf;
        fmt::RankFormat rf;
        rf.type = fmt_type[0] == 'C'
                      ? fmt::RankFormat::Type::C
                      : (fmt_type[0] == 'U' ? fmt::RankFormat::Type::U
                                            : fmt::RankFormat::Type::B);
        for (const char* rank : {"M", "K", "N"})
            tf.ranks[rank] = rf;
        const auto pa =
            storage::PackedTensor::fromTensor(plain.a.toTensor(), tf);
        const auto pb =
            storage::PackedTensor::fromTensor(plain.b.toTensor(), tf);

        Workload packed_w;
        packed_w.add("A", pa).add("B", pb);
        Workload pointer_w;
        pointer_w.add("A", plain.a.toTensor())
            .add("B", plain.b.toTensor());

        RunOptions opts;
        opts.coiterOverrides = {{"K", ir::CoiterStrategy::DenseDrive}};
        StreamRecorder packed_rec;
        StreamRecorder pointer_rec;
        opts.observers = {&packed_rec};
        const SimulationResult packed = model.run(packed_w, opts);
        opts.observers = {&pointer_rec};
        const SimulationResult base = model.run(pointer_w, opts);
        expectSameResults(base, packed);
        EXPECT_EQ(pointer_rec.log, packed_rec.log) << fmt_type;
    }
}

TEST(PackedBinding, MixedPointerAndPackedInputs)
{
    auto model =
        compiler::compile(compiler::Specification::parse(kConcordantSpmSpm));
    const PackedPair in = buildPackedInputs(24);

    Workload mixed;
    mixed.add("A", in.a.toTensor()).add("B", in.b);
    Workload pointer_w;
    pointer_w.add("A", in.a.toTensor()).add("B", in.b.toTensor());

    StreamRecorder mixed_rec;
    StreamRecorder pointer_rec;
    RunOptions opts;
    opts.observers = {&mixed_rec};
    const SimulationResult mixed_r = model.run(mixed, opts);
    opts.observers = {&pointer_rec};
    const SimulationResult base = model.run(pointer_w, opts);
    expectSameResults(base, mixed_r);
    EXPECT_EQ(pointer_rec.log, mixed_rec.log);
}

TEST(PackedBinding, DiscordantPackedFallsBackToLegacyPath)
{
    // The packed tensor arrives in [K, M] order but the mapping wants
    // A as [M, K]: prepareInputs unpacks + swizzles once (the legacy
    // path), and results still match the pointer binding.
    auto model =
        compiler::compile(compiler::Specification::parse(kConcordantSpmSpm));
    const ft::Tensor a_km =
        workloads::uniformMatrix("A", 48, 40, 400, 25, {"K", "M"});
    const ft::Tensor b =
        workloads::uniformMatrix("B", 48, 44, 420, 26, {"K", "N"});

    Workload packed_w;
    packed_w.add("A", storage::PackedTensor::fromTensor(a_km)).add("B", b);
    Workload pointer_w;
    pointer_w.add("A", a_km).add("B", b);

    const SimulationResult packed = model.run(packed_w);
    const SimulationResult base = model.run(pointer_w);
    expectSameResults(base, packed);
}

TEST(PackedBinding, WorkloadAccessors)
{
    const PackedPair in = buildPackedInputs(27);
    Workload w;
    w.add("A", in.a);
    EXPECT_TRUE(w.has("A"));
    EXPECT_NE(w.packed("A"), nullptr);
    EXPECT_EQ(w.packed("missing"), nullptr);
    EXPECT_EQ(w.rankIdsOf("A"), in.a.rankIds());
    EXPECT_THROW((void)w.tensor("A"), DiagnosticError);

    // Owning add keeps the buffers alive inside the workload.
    storage::PackedTensor own = storage::PackedTensor::fromTensor(
        workloads::uniformMatrix("B", 8, 8, 12, 1, {"K", "N"}));
    w.add("B", std::move(own));
    EXPECT_NE(w.packed("B"), nullptr);
    EXPECT_EQ(w.packed("B")->nnz(), 12u);
}

TEST(FormatDiagnostics, UnknownFormatConfigInBindingFailsCompile)
{
    // A storage binding naming a format config the format section
    // does not declare must fail at compile() with a "format"
    // diagnostic instead of silently routing the tensor to the
    // default all-compressed format.
    const char* bad = R"(
einsum:
  declaration:
    A: [K, M]
    B: [K]
    Z: [M]
  expressions:
    - Z[m] = A[k, m] * B[k]
format:
  A:
    CSR:
      M:
        format: U
      K:
        format: C
architecture:
  Simple:
    clock: 1e9
    subtree:
      - name: System
        local:
          - name: Memory
            class: DRAM
          - name: Buf
            class: Buffer
            attributes:
              width: 64
              depth: 1024
          - name: ALU
            class: Compute
            attributes:
              type: mul
binding:
  Z:
    config: Simple
    components:
      - component: ALU
        bindings:
          - op: mul
      - component: Buf
        bindings:
          - tensor: A
            rank: K
            config: CSC
)";
    try {
        (void)compiler::compile(compiler::Specification::parse(bad));
        FAIL() << "expected DiagnosticError";
    } catch (const DiagnosticError& e) {
        EXPECT_EQ(e.diagnostic().section, "format");
        EXPECT_NE(std::string(e.what()).find("CSC"), std::string::npos);
    }
}

} // namespace
} // namespace teaal
