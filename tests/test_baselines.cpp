/**
 * @file
 * Tests for the baseline models: the Gustavson oracle, the CPU/TPU
 * rooflines, and the Sparseloop-like analytical ExTensor model.
 */
#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "workloads/datasets.hpp"

namespace teaal::baselines
{
namespace
{

TEST(Gustavson, MatchesBruteForce)
{
    const auto a =
        workloads::uniformMatrix("A", 30, 25, 200, 1, {"K", "M"});
    const auto b =
        workloads::uniformMatrix("B", 30, 20, 200, 2, {"K", "N"});
    const ft::Tensor z = gustavsonSpmspm(a, b);
    for (ft::Coord m = 0; m < 25; ++m) {
        for (ft::Coord n = 0; n < 20; ++n) {
            double ref = 0;
            for (ft::Coord k = 0; k < 30; ++k) {
                const std::vector<ft::Coord> pa{k, m}, pb{k, n};
                ref += a.at(pa) * b.at(pb);
            }
            const std::vector<ft::Coord> pz{m, n};
            EXPECT_NEAR(z.at(pz), ref, 1e-9);
        }
    }
}

TEST(Gustavson, WorkCountsAreExact)
{
    const auto a =
        workloads::uniformMatrix("A", 40, 30, 250, 3, {"K", "M"});
    const auto b =
        workloads::uniformMatrix("B", 40, 30, 250, 4, {"K", "N"});
    const SpmspmWork work = countSpmspmWork(a, b);
    EXPECT_EQ(work.aNnz, 250u);
    EXPECT_EQ(work.bNnz, 250u);
    // Brute-force multiply count.
    std::size_t mults = 0;
    for (ft::Coord k = 0; k < 40; ++k) {
        std::size_t na = 0, nb = 0;
        for (ft::Coord m = 0; m < 30; ++m) {
            const std::vector<ft::Coord> p{k, m};
            na += a.at(p) != 0;
        }
        for (ft::Coord n = 0; n < 30; ++n) {
            const std::vector<ft::Coord> p{k, n};
            nb += b.at(p) != 0;
        }
        mults += na * nb;
    }
    EXPECT_EQ(work.mults, mults);
    EXPECT_EQ(work.zNnz, gustavsonSpmspm(a, b).nnz());
}

TEST(CpuRoofline, ScalesWithWork)
{
    SpmspmWork small{1000, 500, 300, 300};
    SpmspmWork large{100000, 50000, 3000, 3000};
    EXPECT_LT(cpuSpmspmSeconds(small), cpuSpmspmSeconds(large));
    EXPECT_GT(cpuSpmspmSeconds(small), 0);
}

TEST(TpuRoofline, SkewedShapesWasteTheArray)
{
    // Equal FLOPs, but a skinny GEMM underutilizes the 128x128 array.
    const double square = tpuGemmSeconds(2048, 2048, 2048);
    const double skinny = tpuGemmSeconds(16, 2048, 2048 * 128);
    EXPECT_GT(skinny, square);
}

TEST(TpuRoofline, MonotoneInK)
{
    EXPECT_LT(tpuGemmSeconds(256, 256, 512),
              tpuGemmSeconds(256, 256, 4096));
}

TEST(Sparseloop, AnalyticalEstimateReasonable)
{
    accel::ExTensorConfig cfg;
    const auto est =
        sparseloopExtensor(cfg, 10000, 10000, 10000, 1e-3, 1e-3);
    EXPECT_GT(est.seconds, 0);
    EXPECT_NEAR(est.mults, 1e12 * 1e-6, 1e7);
    EXPECT_GT(est.trafficBytes, 0);
}

TEST(Sparseloop, DensityScalesMults)
{
    accel::ExTensorConfig cfg;
    const auto lo =
        sparseloopExtensor(cfg, 1000, 1000, 1000, 1e-3, 1e-3);
    const auto hi = sparseloopExtensor(cfg, 1000, 1000, 1000, 1e-2, 1e-2);
    EXPECT_NEAR(hi.mults / lo.mults, 100.0, 1.0);
}

} // namespace
} // namespace teaal::baselines
