/**
 * @file
 * Integration test: multi-iteration BFS executed *entirely through the
 * generic Einsum machinery* (the Figure 12a cascade, iterated) agrees
 * with the specialized vertex-centric engine and a textbook BFS. This
 * is the paper's §8 claim — graph algorithms are in TeAAL's domain —
 * demonstrated end to end on the fibertree executor.
 */
#include <gtest/gtest.h>

#include <queue>

#include "exec/executor.hpp"
#include "graph/vertex_centric.hpp"
#include "ir/plan.hpp"
#include "workloads/datasets.hpp"
#include "yaml/yaml.hpp"

namespace teaal
{
namespace
{

/** One BFS iteration via Einsums: frontier in, new frontier out. */
ft::Tensor
bfsStepViaEinsums(const ft::Tensor& g, const ft::Tensor& frontier,
                  ft::Tensor& visited)
{
    // Processing: R[d] = take(G[d,s], A0[s], 0) reduced with or.
    const auto spec = einsum::EinsumSpec::parse(yaml::parse(
        "declaration:\n"
        "  G: [D, S]\n"
        "  A0: [S]\n"
        "  SO: [D, S]\n"
        "  R: [D]\n"
        "expressions:\n"
        "  - SO[d, s] = take(G[d, s], A0[s], 0)\n"
        "  - R[d] = SO[d, s] * A0[s]\n"));
    trace::Observer obs;
    std::map<std::string, ft::Tensor> tensors;
    tensors.emplace("G", g.clone());
    tensors.emplace("A0", frontier.clone());
    for (const auto& e : spec.expressions) {
        const auto plan = ir::buildPlan(e, spec, {}, tensors, {});
        exec::Executor ex(plan, obs, exec::Semiring::orSelect());
        tensors.insert_or_assign(e.output.name, ex.run());
    }
    // Apply: new frontier = R minus visited; update visited.
    ft::Tensor next("A1", {"S"}, {frontier.rank(0).shape});
    tensors.at("R").forEachLeaf(
        [&](std::span<const ft::Coord> p, double) {
            const std::vector<ft::Coord> v{p[0]};
            if (visited.at(v) == 0.0) {
                visited.set(v, 1.0);
                next.set(v, 1.0);
            }
        });
    return next;
}

TEST(GraphCascade, EinsumBfsMatchesEngineAndReference)
{
    const auto g = workloads::rmatGraph(128, 700, 41);
    const auto gt = workloads::graphToTensor(g, "G");

    // Reference BFS levels.
    std::vector<int> level(128, -1);
    {
        std::queue<std::uint32_t> q;
        level[0] = 0;
        q.push(0);
        while (!q.empty()) {
            const auto v = q.front();
            q.pop();
            for (std::uint32_t e = g.offsets[v]; e < g.offsets[v + 1];
                 ++e) {
                if (level[g.targets[e]] < 0) {
                    level[g.targets[e]] =
                        level[v] + 1;
                    q.push(g.targets[e]);
                }
            }
        }
    }

    // Einsum-cascade BFS.
    ft::Tensor visited("V", {"S"}, {128});
    ft::Tensor frontier("A0", {"S"}, {128});
    const std::vector<ft::Coord> src{0};
    visited.set(src, 1.0);
    frontier.set(src, 1.0);
    std::vector<std::size_t> frontier_sizes;
    for (int iter = 0; iter < 64 && frontier.nnz() > 0; ++iter) {
        frontier = bfsStepViaEinsums(gt, frontier, visited);
        frontier_sizes.push_back(frontier.nnz());
        // Every frontier vertex must be at reference level iter+1.
        frontier.forEachLeaf(
            [&](std::span<const ft::Coord> p, double) {
                EXPECT_EQ(level[static_cast<std::size_t>(p[0])],
                          iter + 1)
                    << "vertex " << p[0];
            });
    }

    // Total visited count matches the reference reachable set.
    const auto reachable = static_cast<std::size_t>(std::count_if(
        level.begin(), level.end(), [](int l) { return l >= 0; }));
    EXPECT_EQ(visited.nnz(), reachable);

    // And the specialized engine reports the same per-level updates.
    const auto run =
        graph::runVertexCentric(g, graph::Algorithm::BFS, 0);
    ASSERT_GE(run.iterations.size(), frontier_sizes.size());
    for (std::size_t i = 0; i < frontier_sizes.size(); ++i)
        EXPECT_EQ(run.iterations[i].updated, frontier_sizes[i]);
}

TEST(GraphCascade, GraphDynSCascadeRunsEndToEnd)
{
    // The Figure 12b cascade (7 Einsums incl. P1 = NP whole-copy)
    // executes through the generic machinery on a tiny graph.
    const auto g = workloads::rmatGraph(32, 150, 42);
    const auto gt = workloads::graphToTensor(g, "G", {"V", "S"});
    const auto spec = einsum::EinsumSpec::parse(
        yaml::parse(graph::graphDynSCascadeYaml()));

    std::map<std::string, ft::Tensor> tensors;
    tensors.emplace("G", gt.clone());
    ft::Tensor a0("A0", {"S"}, {32});
    ft::Tensor p0("P0", {"V"}, {32});
    // Activate the highest-out-degree vertex so R is non-empty.
    std::uint32_t best = 0;
    for (std::uint32_t v = 0; v < 32; ++v) {
        if (g.offsets[v + 1] - g.offsets[v] >
            g.offsets[best + 1] - g.offsets[best])
            best = v;
    }
    ASSERT_GT(g.offsets[best + 1] - g.offsets[best], 0u);
    const std::vector<ft::Coord> src{static_cast<ft::Coord>(best)};
    a0.set(src, 1.0);
    p0.set(src, 1.0);
    tensors.emplace("A0", std::move(a0));
    tensors.emplace("P0", std::move(p0));

    trace::Observer obs;
    std::vector<std::string> produced;
    for (const auto& e : spec.expressions) {
        const auto plan =
            ir::buildPlan(e, spec, {}, tensors, produced);
        exec::Executor ex(plan, obs, exec::Semiring::orSelect());
        tensors.insert_or_assign(e.output.name, ex.run());
        produced.push_back(e.output.name);
    }
    // P1 exists and includes the source's neighbors or the source.
    ASSERT_TRUE(tensors.count("P1"));
    EXPECT_GT(tensors.at("P1").nnz(), 0u);
    ASSERT_TRUE(tensors.count("A1"));
}

} // namespace
} // namespace teaal
