/**
 * @file
 * Unit and property tests for the fibertree substrate: fibers, tensors,
 * co-iteration, and the content-preserving transformations of paper
 * §2.1/§3.2 (swizzle, flatten, shape/occupancy partitioning).
 */
#include <gtest/gtest.h>

#include <map>

#include "fibertree/coiter.hpp"
#include "fibertree/tensor.hpp"
#include "fibertree/transform.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace teaal::ft
{
namespace
{

/// The matrix A from paper Figure 1: rank order [M, K], shape 3x4.
///   A[0,2]=1, A[2,0]=3, A[2,1]=4, A[2,2]=2  (values arbitrary here)
Tensor
paperMatrixA()
{
    return Tensor::fromCoo("A", {"M", "K"}, {3, 4},
                           {{{0, 2}, 1.0},
                            {{2, 0}, 3.0},
                            {{2, 1}, 4.0},
                            {{2, 2}, 2.0}});
}

TEST(Fiber, AppendAndLookup)
{
    Fiber f(10);
    f.append(1, Payload(1.5));
    f.append(4, Payload(2.5));
    f.append(9, Payload(3.5));
    EXPECT_EQ(f.size(), 3u);
    EXPECT_EQ(f.coordAt(1), 4);
    ASSERT_TRUE(f.find(4).has_value());
    EXPECT_EQ(*f.find(4), 1u);
    EXPECT_FALSE(f.find(5).has_value());
    EXPECT_EQ(f.lowerBound(5), 2u);
    EXPECT_EQ(f.lowerBound(0), 0u);
    EXPECT_EQ(f.lowerBound(100), 3u);
}

TEST(Fiber, AppendOutOfOrderThrows)
{
    Fiber f(10);
    f.append(5, Payload(1.0));
    EXPECT_THROW(f.append(5, Payload(2.0)), ModelError);
    EXPECT_THROW(f.append(3, Payload(2.0)), ModelError);
}

TEST(Fiber, GetOrInsertMaintainsSortedOrder)
{
    Fiber f(10);
    f.getOrInsert(5).setValue(1);
    f.getOrInsert(2).setValue(2);
    f.getOrInsert(8).setValue(3);
    f.getOrInsert(5).setValue(4); // overwrite
    ASSERT_EQ(f.size(), 3u);
    EXPECT_EQ(f.coordAt(0), 2);
    EXPECT_EQ(f.coordAt(1), 5);
    EXPECT_EQ(f.coordAt(2), 8);
    EXPECT_DOUBLE_EQ(f.payloadAt(1).value(), 4);
}

TEST(Fiber, FromUnsortedSortsAndRejectsDuplicates)
{
    auto f = Fiber::fromUnsorted(
        {{5, Payload(1.0)}, {1, Payload(2.0)}, {3, Payload(3.0)}}, 10);
    EXPECT_EQ(f->coordAt(0), 1);
    EXPECT_EQ(f->coordAt(2), 5);
    EXPECT_THROW(
        Fiber::fromUnsorted({{1, Payload(1.0)}, {1, Payload(2.0)}}, 10),
        ModelError);
}

TEST(Payload, EmptyClassification)
{
    EXPECT_TRUE(Payload().empty());
    EXPECT_FALSE(Payload(1.0).empty());
    EXPECT_TRUE(Payload(FiberPtr()).empty());
    EXPECT_TRUE(Payload(std::make_shared<Fiber>(4)).empty());
    auto f = std::make_shared<Fiber>(4);
    f->append(0, Payload(1.0));
    EXPECT_FALSE(Payload(f).empty());
}

TEST(Tensor, SetAtRoundTrip)
{
    Tensor t = paperMatrixA();
    EXPECT_EQ(t.nnz(), 4u);
    const std::vector<Coord> p1{0, 2};
    const std::vector<Coord> p2{2, 1};
    const std::vector<Coord> missing{1, 1};
    EXPECT_DOUBLE_EQ(t.at(p1), 1.0);
    EXPECT_DOUBLE_EQ(t.at(p2), 4.0);
    EXPECT_DOUBLE_EQ(t.at(missing), 0.0);
}

TEST(Tensor, RankLookup)
{
    const Tensor t = paperMatrixA();
    EXPECT_EQ(t.rankLevel("M"), 0);
    EXPECT_EQ(t.rankLevel("K"), 1);
    EXPECT_EQ(t.rankLevel("Q"), -1);
    EXPECT_EQ(t.rankIds(), (std::vector<std::string>{"M", "K"}));
}

TEST(Tensor, ForEachLeafIsConcordant)
{
    const Tensor t = paperMatrixA();
    std::vector<std::vector<Coord>> points;
    t.forEachLeaf([&](std::span<const Coord> p, Value) {
        points.emplace_back(p.begin(), p.end());
    });
    ASSERT_EQ(points.size(), 4u);
    EXPECT_TRUE(std::is_sorted(points.begin(), points.end()));
}

TEST(Tensor, EqualsIgnoresZeroLeaves)
{
    Tensor a = paperMatrixA();
    Tensor b = paperMatrixA();
    EXPECT_TRUE(a.equals(b));
    const std::vector<Coord> extra{1, 3};
    b.set(extra, 0.0); // explicit zero should not break equality
    EXPECT_TRUE(a.equals(b));
    b.set(extra, 7.0);
    EXPECT_FALSE(a.equals(b));
}

TEST(Tensor, CloneIsDeep)
{
    Tensor a = paperMatrixA();
    Tensor b = a.clone();
    const std::vector<Coord> p{0, 2};
    b.set(p, 99.0);
    EXPECT_DOUBLE_EQ(a.at(p), 1.0);
    EXPECT_DOUBLE_EQ(b.at(p), 99.0);
}

TEST(CoIter, Intersect2FindsCommonCoords)
{
    Fiber a(16), b(16);
    for (Coord c : {1, 3, 5, 7, 11})
        a.append(c, Payload(1.0));
    for (Coord c : {3, 4, 5, 11, 12})
        b.append(c, Payload(2.0));
    std::vector<Coord> matches;
    const auto stats =
        intersect2(FiberView::whole(&a), FiberView::whole(&b),
                   [&](Coord c, std::size_t, std::size_t) {
                       matches.push_back(c);
                   });
    EXPECT_EQ(matches, (std::vector<Coord>{3, 5, 11}));
    EXPECT_EQ(stats.matches, 3u);
    EXPECT_GE(stats.steps, stats.matches);
}

TEST(CoIter, UnionMergeCoversBothSides)
{
    Fiber a(16), b(16);
    for (Coord c : {1, 5})
        a.append(c, Payload(1.0));
    for (Coord c : {2, 5})
        b.append(c, Payload(2.0));
    std::vector<std::tuple<Coord, bool, bool>> seen;
    unionMerge(FiberView::whole(&a), FiberView::whole(&b),
               [&](Coord c, std::optional<std::size_t> pa,
                   std::optional<std::size_t> pb) {
                   seen.emplace_back(c, pa.has_value(), pb.has_value());
               });
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], std::make_tuple(Coord{1}, true, false));
    EXPECT_EQ(seen[1], std::make_tuple(Coord{2}, false, true));
    EXPECT_EQ(seen[2], std::make_tuple(Coord{5}, true, true));
}

TEST(CoIter, LeaderFollowerVisitsEveryLeaderElement)
{
    Fiber lead(16), follow(16);
    for (Coord c : {1, 3, 9})
        lead.append(c, Payload(1.0));
    for (Coord c : {3, 9, 12})
        follow.append(c, Payload(2.0));
    int with = 0, without = 0;
    const auto stats = leaderFollower(
        FiberView::whole(&lead), FiberView::whole(&follow),
        [&](Coord, std::size_t, std::optional<std::size_t> pf) {
            pf ? ++with : ++without;
        });
    EXPECT_EQ(with, 2);
    EXPECT_EQ(without, 1);
    EXPECT_EQ(stats.steps, 3u);
    EXPECT_EQ(stats.matches, 2u);
}

TEST(CoIter, RangeSlicesByCoordinate)
{
    Fiber f(100);
    for (Coord c : {10, 20, 30, 40})
        f.append(c, Payload(1.0));
    const auto view = FiberView::whole(&f).range(15, 40);
    ASSERT_EQ(view.size(), 2u);
    EXPECT_EQ(view.coordAt(view.lo), 20);
    EXPECT_EQ(view.coordAt(view.hi - 1), 30);
    EXPECT_TRUE(FiberView::whole(&f).range(35, 100).size() == 1);
    EXPECT_TRUE(FiberView::whole(&f).range(50, 10).empty());
}

TEST(Transform, SwizzleMatchesPaperFigure4)
{
    // [M, K] -> [K, M]: contents preserved, coordinates transposed.
    const Tensor a = paperMatrixA();
    const Tensor at = swizzle(a, {"K", "M"});
    EXPECT_EQ(at.rankIds(), (std::vector<std::string>{"K", "M"}));
    EXPECT_EQ(at.nnz(), a.nnz());
    a.forEachLeaf([&](std::span<const Coord> p, Value v) {
        const std::vector<Coord> swapped{p[1], p[0]};
        EXPECT_DOUBLE_EQ(at.at(swapped), v);
    });
}

TEST(Transform, SwizzleInvalidOrderThrows)
{
    const Tensor a = paperMatrixA();
    EXPECT_THROW(swizzle(a, {"K", "K"}), SpecError);
    EXPECT_THROW(swizzle(a, {"K"}), SpecError);
    EXPECT_THROW(swizzle(a, {"K", "Q"}), SpecError);
}

TEST(Transform, SwizzleRoundTripIsIdentity)
{
    const Tensor a = paperMatrixA();
    const Tensor back = swizzle(swizzle(a, {"K", "M"}), {"M", "K"});
    EXPECT_TRUE(back.equals(a));
}

TEST(Transform, FlattenMatchesPaperFigure2)
{
    // Figure 2 flattens [M, K] into MK with tuple coordinates; our
    // packed coordinate is m*Kshape + k.
    const Tensor a = paperMatrixA();
    const Tensor flat = flattenRanks(a, "M", "K");
    ASSERT_EQ(flat.numRanks(), 1u);
    EXPECT_EQ(flat.rank(0).id, "MK");
    EXPECT_TRUE(flat.rank(0).isFlattened());
    EXPECT_EQ(flat.rank(0).flatIds,
              (std::vector<std::string>{"M", "K"}));
    EXPECT_EQ(flat.nnz(), 4u);
    const std::vector<Coord> p{0 * 4 + 2};
    EXPECT_DOUBLE_EQ(flat.at(p), 1.0);
    const std::vector<Coord> q{2 * 4 + 1};
    EXPECT_DOUBLE_EQ(flat.at(q), 4.0);
}

TEST(Transform, FlattenRequiresAdjacentRanks)
{
    const Tensor t = Tensor::fromCoo("T", {"A", "B", "C"}, {2, 2, 2},
                                     {{{0, 0, 0}, 1.0}});
    EXPECT_THROW(flattenRanks(t, "A", "C"), SpecError);
    EXPECT_THROW(flattenRanks(t, "B", "A"), SpecError);
    EXPECT_NO_THROW(flattenRanks(t, "A", "B"));
}

TEST(Transform, SplitByShapeCreatesTiles)
{
    // K rank of [K] vector, shape 8, tile 3: partitions at 0, 3, 6.
    const Tensor v = Tensor::fromCoo(
        "V", {"K"}, {8},
        {{{0}, 1.0}, {{2}, 2.0}, {{3}, 3.0}, {{7}, 4.0}});
    const Tensor split = splitRankByShape(v, "K", 3, "K1", "K0");
    ASSERT_EQ(split.numRanks(), 2u);
    EXPECT_EQ(split.rank(0).id, "K1");
    EXPECT_EQ(split.rank(1).id, "K0");
    // Upper coords are tile starts; lower fibers keep absolute coords.
    const Fiber& top = *split.root();
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top.coordAt(0), 0);
    EXPECT_EQ(top.coordAt(1), 3);
    EXPECT_EQ(top.coordAt(2), 6);
    EXPECT_EQ(top.payloadAt(0).fiber()->size(), 2u);
    EXPECT_EQ(top.payloadAt(1).fiber()->size(), 1u);
    EXPECT_EQ(top.payloadAt(2).fiber()->coordAt(0), 7);
}

TEST(Transform, SplitByShapePreservesContents)
{
    const Tensor a = paperMatrixA();
    const Tensor split = splitRankByShape(a, "K", 2, "K1", "K0");
    EXPECT_EQ(split.nnz(), a.nnz());
    a.forEachLeaf([&](std::span<const Coord> p, Value v) {
        const std::vector<Coord> q{p[0], p[1] - p[1] % 2, p[1]};
        EXPECT_DOUBLE_EQ(split.at(q), v);
    });
}

TEST(Transform, SplitByOccupancyBalancesElements)
{
    // 7 elements, chunks of 3 -> occupancies 3, 3, 1.
    std::vector<std::pair<std::vector<Coord>, Value>> elems;
    for (Coord c : {1, 5, 6, 20, 21, 40, 90})
        elems.push_back({{c}, static_cast<Value>(c)});
    const Tensor v = Tensor::fromCoo("V", {"K"}, {100}, elems);
    const Tensor split = splitRankByOccupancy(v, "K", 3, "K1", "K0");
    const Fiber& top = *split.root();
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top.payloadAt(0).fiber()->size(), 3u);
    EXPECT_EQ(top.payloadAt(1).fiber()->size(), 3u);
    EXPECT_EQ(top.payloadAt(2).fiber()->size(), 1u);
    // First chunk starts at the range minimum; later chunks start at
    // their first element's coordinate.
    EXPECT_EQ(top.coordAt(0), 0);
    EXPECT_EQ(top.coordAt(1), 20);
    EXPECT_EQ(top.coordAt(2), 90);
}

TEST(Transform, OccupancyBoundariesExported)
{
    Fiber f(100);
    for (Coord c : {1, 5, 6, 20, 21, 40, 90})
        f.append(c, Payload(1.0));
    const auto starts = occupancyBoundaries(f, 3);
    EXPECT_EQ(starts, (std::vector<Coord>{0, 20, 90}));
    Fiber empty(10);
    EXPECT_EQ(occupancyBoundaries(empty, 4), (std::vector<Coord>{0}));
}

TEST(Transform, SplitByBoundariesFollowsLeader)
{
    // Follower adopts leader boundaries even where it has no elements.
    const Tensor v = Tensor::fromCoo(
        "W", {"K"}, {100},
        {{{2}, 1.0}, {{25}, 2.0}, {{95}, 3.0}});
    const Tensor split =
        splitRankByBoundaries(v, "K", {0, 20, 90}, "K1", "K0");
    const Fiber& top = *split.root();
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top.coordAt(0), 0);
    EXPECT_EQ(top.coordAt(1), 20);
    EXPECT_EQ(top.coordAt(2), 90);
    EXPECT_EQ(top.payloadAt(1).fiber()->coordAt(0), 25);
}

TEST(Transform, FlattenThenOccupancyMatchesFigure2Flow)
{
    // Figure 2: flatten ranks M, K of A then partition to equalize
    // element counts per partition.
    const Tensor a = paperMatrixA();
    const Tensor flat = flattenRanks(a, "M", "K");
    const Tensor split =
        splitRankByOccupancy(flat, "MK", 2, "MK1", "MK0");
    const Fiber& top = *split.root();
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top.payloadAt(0).fiber()->size(), 2u);
    EXPECT_EQ(top.payloadAt(1).fiber()->size(), 2u);
    EXPECT_EQ(split.nnz(), 4u);
}

TEST(Transform, PartitioningDeepRankSplitsEachFiber)
{
    // Split the K rank (level 1) of A [M, K]: each row fiber is
    // partitioned independently.
    const Tensor a = paperMatrixA();
    const Tensor split = splitRankByOccupancy(a, "K", 2, "K1", "K0");
    EXPECT_EQ(split.rankIds(),
              (std::vector<std::string>{"M", "K1", "K0"}));
    EXPECT_EQ(split.nnz(), a.nnz());
    // Row 2 has 3 elements -> chunks of 2 then 1.
    const auto pos = split.root()->find(2);
    ASSERT_TRUE(pos.has_value());
    const Fiber& row = *split.root()->payloadAt(*pos).fiber();
    ASSERT_EQ(row.size(), 2u);
    EXPECT_EQ(row.payloadAt(0).fiber()->size(), 2u);
    EXPECT_EQ(row.payloadAt(1).fiber()->size(), 1u);
}

/// Property test over random matrices: every transform preserves the
/// multiset of (point, value) contents (content preservation, §3.2).
class TransformProperty : public ::testing::TestWithParam<int>
{
  protected:
    Tensor
    randomMatrix(int seed)
    {
        Xoshiro256 rng(static_cast<std::uint64_t>(seed));
        const Coord rows = 20 + static_cast<Coord>(rng.below(30));
        const Coord cols = 20 + static_cast<Coord>(rng.below(30));
        std::map<std::pair<Coord, Coord>, Value> elems;
        const std::size_t nnz = 50 + rng.below(100);
        while (elems.size() < nnz) {
            const Coord r = static_cast<Coord>(rng.below(
                static_cast<std::uint64_t>(rows)));
            const Coord c = static_cast<Coord>(rng.below(
                static_cast<std::uint64_t>(cols)));
            elems[{r, c}] = 1.0 + rng.uniform();
        }
        std::vector<std::pair<std::vector<Coord>, Value>> coo;
        for (const auto& [rc, v] : elems)
            coo.push_back({{rc.first, rc.second}, v});
        return Tensor::fromCoo("R", {"M", "K"}, {rows, cols}, coo);
    }
};

TEST_P(TransformProperty, SwizzlePreservesContents)
{
    const Tensor t = randomMatrix(GetParam());
    const Tensor s = swizzle(t, {"K", "M"});
    EXPECT_EQ(s.nnz(), t.nnz());
    t.forEachLeaf([&](std::span<const Coord> p, Value v) {
        const std::vector<Coord> q{p[1], p[0]};
        EXPECT_DOUBLE_EQ(s.at(q), v);
    });
}

TEST_P(TransformProperty, FlattenPreservesContents)
{
    const Tensor t = randomMatrix(GetParam());
    const Coord kshape = t.rank(1).shape;
    const Tensor flat = flattenRanks(t, "M", "K");
    EXPECT_EQ(flat.nnz(), t.nnz());
    t.forEachLeaf([&](std::span<const Coord> p, Value v) {
        const std::vector<Coord> q{p[0] * kshape + p[1]};
        EXPECT_DOUBLE_EQ(flat.at(q), v);
    });
}

TEST_P(TransformProperty, ShapeSplitPreservesContents)
{
    const Tensor t = randomMatrix(GetParam());
    for (Coord tile : {1, 3, 7, 64}) {
        const Tensor s = splitRankByShape(t, "M", tile, "M1", "M0");
        EXPECT_EQ(s.nnz(), t.nnz());
        t.forEachLeaf([&](std::span<const Coord> p, Value v) {
            const std::vector<Coord> q{p[0] - p[0] % tile, p[0], p[1]};
            EXPECT_DOUBLE_EQ(s.at(q), v);
        });
    }
}

TEST_P(TransformProperty, OccupancySplitBalancesWithinOne)
{
    const Tensor t = randomMatrix(GetParam());
    const Tensor flat = flattenRanks(t, "M", "K");
    for (std::size_t chunk : {2u, 5u, 16u}) {
        const Tensor s =
            splitRankByOccupancy(flat, "MK", chunk, "MK1", "MK0");
        EXPECT_EQ(s.nnz(), t.nnz());
        const Fiber& top = *s.root();
        for (std::size_t pos = 0; pos < top.size(); ++pos) {
            const std::size_t occ = top.payloadAt(pos).fiber()->size();
            if (pos + 1 < top.size())
                EXPECT_EQ(occ, chunk); // all but last chunk are full
            else
                EXPECT_LE(occ, chunk);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformProperty,
                         ::testing::Range(0, 8));

} // namespace
} // namespace teaal::ft
