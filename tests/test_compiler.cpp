/**
 * @file
 * End-to-end tests: the four accelerator specifications compile to
 * simulators whose results match the Gustavson oracle and whose
 * action counts / traffic / timing behave as the designs should
 * (paper §5-§7 qualitative properties).
 */
#include <gtest/gtest.h>

#include "accelerators/accelerators.hpp"
#include "baselines/baselines.hpp"
#include "compiler/compiler.hpp"
#include "fibertree/transform.hpp"
#include "workloads/datasets.hpp"

namespace teaal
{
namespace
{

using compiler::SimulationResult;
using compiler::Simulator;

/** Small scaled-down configs so tests stay fast. */
accel::OuterSpaceConfig
smallOuterSpace()
{
    accel::OuterSpaceConfig cfg;
    cfg.processingTiles = 4;
    cfg.pesPerTileMultiply = 4;
    cfg.pesPerTileMerge = 2;
    cfg.chunkOuter = 16;
    cfg.chunkInner = 4;
    cfg.mergeChunkOuter = 8;
    cfg.mergeChunkInner = 2;
    cfg.l0CacheBytes = 4096;
    return cfg;
}

accel::GammaConfig
smallGamma()
{
    accel::GammaConfig cfg;
    cfg.pes = 4;
    cfg.rowChunk = 4;
    cfg.kChunk = 8;
    cfg.fiberCacheBytes = 64 * 1024;
    return cfg;
}

accel::ExTensorConfig
smallExTensor()
{
    accel::ExTensorConfig cfg;
    cfg.pes = 4;
    cfg.tileK1 = 16;
    cfg.tileK0 = 4;
    cfg.tileM1 = 16;
    cfg.tileM0 = 4;
    cfg.tileN1 = 16;
    cfg.tileN0 = 4;
    cfg.llcBytes = 256 * 1024;
    return cfg;
}

accel::SigmaConfig
smallSigma()
{
    accel::SigmaConfig cfg;
    cfg.flexDpes = 2;
    cfg.pesPerDpe = 4;
    cfg.kTile = 8;
    cfg.stationaryChunk = 8;
    return cfg;
}

struct TestMatrices
{
    ft::Tensor a;
    ft::Tensor b;
    ft::Tensor ref;
};

TestMatrices
makeMatrices(std::uint64_t seed, ft::Coord k = 40, ft::Coord m = 32,
             ft::Coord n = 36, std::size_t nnz = 300)
{
    TestMatrices out{
        workloads::uniformMatrix("A", k, m, nnz, seed, {"K", "M"}),
        workloads::uniformMatrix("B", k, n, nnz, seed + 1, {"K", "N"}),
        ft::Tensor()};
    out.ref = baselines::gustavsonSpmspm(out.a, out.b);
    return out;
}

TEST(Compiler, OuterSpaceEndToEnd)
{
    Simulator sim(accel::outerSpace(smallOuterSpace()));
    auto mats = makeMatrices(1);
    const SimulationResult result =
        sim.run({{"A", mats.a.clone()}, {"B", mats.b.clone()}});

    // Functional correctness.
    EXPECT_TRUE(result.result(sim.spec()).equals(mats.ref, 1e-9));

    // OuterSPACE's phases do not fuse (different topologies).
    ASSERT_EQ(result.blocks.size(), 2u);

    // T goes through DRAM: written by multiply, read by merge.
    const auto t = result.traffic.find("T");
    ASSERT_NE(t, result.traffic.end());
    EXPECT_GT(t->second.writeBytes, 0);
    EXPECT_GT(t->second.readBytes, 0);

    // A is streamed once: traffic close to its footprint.
    const double a_bytes = static_cast<double>(fmt::tensorBits(
                               sim.spec().formats.get("A", "CSC"),
                               mats.a)) /
                           8.0;
    const auto& a_traffic = result.traffic.at("A");
    EXPECT_GT(a_traffic.readBytes, 0.5 * a_bytes);
    EXPECT_LT(a_traffic.readBytes, 2.0 * a_bytes);

    // The merge phase exercises the sort network.
    bool merge_seen = false;
    for (const auto& record : result.records) {
        const auto it = record.components.find("SortNet");
        if (it != record.components.end() &&
            it->second.count("merge_elems") > 0)
            merge_seen = true;
    }
    EXPECT_TRUE(merge_seen);

    EXPECT_GT(result.perf.totalSeconds, 0);
    EXPECT_GT(result.energy.totalJoules, 0);
}

TEST(Compiler, GammaEndToEnd)
{
    Simulator sim(accel::gamma(smallGamma()));
    auto mats = makeMatrices(2);
    const SimulationResult result =
        sim.run({{"A", mats.a.clone()}, {"B", mats.b.clone()}});

    EXPECT_TRUE(result.result(sim.spec()).equals(mats.ref, 1e-9));

    // Gamma's two Einsums fuse; T never reaches DRAM.
    ASSERT_EQ(result.blocks.size(), 1u);
    EXPECT_EQ(result.blocks[0], (std::vector<std::size_t>{0, 1}));
    const auto t = result.traffic.find("T");
    if (t != result.traffic.end()) {
        EXPECT_DOUBLE_EQ(t->second.readBytes, 0);
        EXPECT_DOUBLE_EQ(t->second.writeBytes, 0);
    }

    // A read once (shared through the fused pipeline).
    const double a_bytes = static_cast<double>(fmt::tensorBits(
                               sim.spec().formats.get("A", "CSR"),
                               ft::swizzle(mats.a, {"M", "K"}))) /
                           8.0;
    EXPECT_LT(result.traffic.at("A").readBytes, 1.5 * a_bytes);

    // The 64-way merger does the T swizzle in one pass per element.
    bool merger_used = false;
    for (const auto& record : result.records) {
        const auto it = record.components.find("TopMerger");
        if (it != record.components.end() &&
            it->second.count("merge_elems") > 0)
            merger_used = true;
    }
    EXPECT_TRUE(merger_used);
}

TEST(Compiler, ExTensorEndToEnd)
{
    Simulator sim(accel::extensor(smallExTensor()));
    auto mats = makeMatrices(3);
    const SimulationResult result =
        sim.run({{"A", mats.a.clone()}, {"B", mats.b.clone()}});

    EXPECT_TRUE(result.result(sim.spec()).equals(mats.ref, 1e-9));

    // Single Einsum -> single block; skip-ahead intersections counted.
    ASSERT_EQ(result.blocks.size(), 1u);
    const auto& record = result.records[0];
    const auto isect = record.components.find("SkipAhead");
    ASSERT_NE(isect, record.components.end());
    EXPECT_GT(isect->second.count("steps"), 0);
    EXPECT_GE(isect->second.count("steps"),
              isect->second.count("matches"));

    // Partial outputs spill across K2 tiles (PO of Figure 9a).
    EXPECT_GE(result.traffic.at("Z").poBytes, 0);
    EXPECT_GT(result.traffic.at("Z").writeBytes, 0);
}

TEST(Compiler, SigmaEndToEnd)
{
    Simulator sim(accel::sigma(smallSigma()));
    auto mats = makeMatrices(4, 32, 24, 20, 250);
    const SimulationResult result =
        sim.run({{"A", mats.a.clone()}, {"B", mats.b.clone()}});

    EXPECT_TRUE(result.result(sim.spec()).equals(mats.ref, 1e-9));
    EXPECT_EQ(result.records.size(), 3u); // S, T, Z

    // The filter stages produce bitmap metadata: tiny traffic
    // relative to the multiply stage's B streaming.
    const double st_traffic = result.traffic.count("S")
                                  ? result.traffic.at("S").total()
                                  : 0;
    EXPECT_LT(st_traffic, result.traffic.at("B").total());
}

TEST(Compiler, EffectualComputeMatchesOracle)
{
    // The executor's multiply count must equal the Gustavson count
    // (ineffectual compute skipped -- the whole point of sparsity).
    auto mats = makeMatrices(5);
    const auto work = baselines::countSpmspmWork(mats.a, mats.b);
    Simulator sim(accel::extensor(smallExTensor()));
    const SimulationResult result =
        sim.run({{"A", mats.a.clone()}, {"B", mats.b.clone()}});
    EXPECT_EQ(result.records[0].execStats.computeMuls, work.mults);
}

TEST(Compiler, AlgorithmicMinIsLowerBound)
{
    auto mats = makeMatrices(6);
    for (auto spec : {accel::outerSpace(smallOuterSpace()),
                      accel::gamma(smallGamma()),
                      accel::extensor(smallExTensor())}) {
        Simulator sim(std::move(spec));
        const SimulationResult result =
            sim.run({{"A", mats.a.clone()}, {"B", mats.b.clone()}});
        const double min_bytes =
            sim.algorithmicMinBytes(result.tensors);
        EXPECT_GT(min_bytes, 0);
        // Total traffic can never beat the compulsory traffic by more
        // than the coordinate-metadata differences; use 0.5x as a
        // sanity floor.
        EXPECT_GT(result.totalTrafficBytes(), 0.5 * min_bytes);
    }
}

TEST(Compiler, MissingInputThrows)
{
    Simulator sim(accel::gamma(smallGamma()));
    auto mats = makeMatrices(7);
    EXPECT_THROW(sim.run({{"A", mats.a.clone()}}), SpecError);
}

TEST(Compiler, SpecificationParseRejectsGarbage)
{
    EXPECT_THROW(compiler::Specification::parse("nonsense: {"),
                 SpecError);
    EXPECT_THROW(compiler::Specification::parse("einsum:\n  x: 1\n"),
                 SpecError);
}

/// The same workload on all three SpMSpM accelerators produces the
/// same result tensor (cross-accelerator agreement).
TEST(Compiler, CrossAcceleratorAgreement)
{
    auto mats = makeMatrices(8);
    std::map<std::string, ft::Tensor> outs;
    {
        Simulator sim(accel::outerSpace(smallOuterSpace()));
        outs.emplace("os",
                     sim.run({{"A", mats.a.clone()},
                              {"B", mats.b.clone()}})
                         .result(sim.spec())
                         .clone());
    }
    {
        Simulator sim(accel::gamma(smallGamma()));
        outs.emplace("gm",
                     sim.run({{"A", mats.a.clone()},
                              {"B", mats.b.clone()}})
                         .result(sim.spec())
                         .clone());
    }
    {
        Simulator sim(accel::sigma(smallSigma()));
        outs.emplace("sg",
                     sim.run({{"A", mats.a.clone()},
                              {"B", mats.b.clone()}})
                         .result(sim.spec())
                         .clone());
    }
    EXPECT_TRUE(outs.at("os").equals(outs.at("gm"), 1e-9));
    EXPECT_TRUE(outs.at("os").equals(outs.at("sg"), 1e-9));
    EXPECT_TRUE(outs.at("os").equals(mats.ref, 1e-9));
}

} // namespace
} // namespace teaal
