/**
 * @file
 * Unit tests for the extended-Einsum parser and cascade analysis:
 * every expression shape from paper Figures 3, 8, 12 and Table 2.
 */
#include <gtest/gtest.h>

#include "einsum/parser.hpp"
#include "util/error.hpp"
#include "yaml/yaml.hpp"

namespace teaal::einsum
{
namespace
{

TEST(EinsumParse, MatrixMultiply)
{
    const Expression e = parseExpression("Z[m, n] = A[k, m] * B[k, n]");
    EXPECT_EQ(e.kind, OpKind::Multiply);
    EXPECT_EQ(e.output.name, "Z");
    ASSERT_EQ(e.output.indices.size(), 2u);
    EXPECT_TRUE(e.output.indices[0].isSimpleVar());
    EXPECT_EQ(e.output.indices[0].vars[0], "m");
    ASSERT_EQ(e.inputs.size(), 2u);
    EXPECT_EQ(e.inputs[0].name, "A");
    EXPECT_EQ(e.inputs[1].name, "B");
    EXPECT_EQ(e.iterationVars(),
              (std::vector<std::string>{"m", "n", "k"}));
    EXPECT_EQ(e.reductionVars(), (std::vector<std::string>{"k"}));
}

TEST(EinsumParse, ReductionOnlyAssign)
{
    const Expression e = parseExpression("Z[m, n] = T[k, m, n]");
    EXPECT_EQ(e.kind, OpKind::Assign);
    ASSERT_EQ(e.inputs.size(), 1u);
    EXPECT_EQ(e.inputs[0].name, "T");
    EXPECT_EQ(e.reductionVars(), (std::vector<std::string>{"k"}));
}

TEST(EinsumParse, TakeOperator)
{
    const Expression e =
        parseExpression("T[k, m, n] = take(A[k, m], B[k, n], 1)");
    EXPECT_EQ(e.kind, OpKind::Take);
    EXPECT_EQ(e.takeArg, 1);
    ASSERT_EQ(e.inputs.size(), 2u);
    EXPECT_EQ(e.inputs[0].name, "A");
    EXPECT_EQ(e.inputs[1].name, "B");
}

TEST(EinsumParse, TakeArgMustBeBinary)
{
    EXPECT_THROW(parseExpression("T[k] = take(A[k], B[k], 2)"),
                 SpecError);
    EXPECT_THROW(parseExpression("T[k] = take(A[k], B[k])"), SpecError);
}

TEST(EinsumParse, AddAndSubtract)
{
    const Expression e = parseExpression("M[v] = NP[v] - MP[v]");
    EXPECT_EQ(e.kind, OpKind::Add);
    ASSERT_EQ(e.inputs.size(), 2u);
    EXPECT_EQ(e.signs, (std::vector<int>{1, -1}));
    const Expression f = parseExpression("P1[v] = R[v] + P0[v]");
    EXPECT_EQ(f.signs, (std::vector<int>{1, 1}));
}

TEST(EinsumParse, AffineIndexConvolution)
{
    const Expression e = parseExpression("O[q] = I[q+s] * F[s]");
    EXPECT_EQ(e.kind, OpKind::Multiply);
    const IndexExpr& affine = e.inputs[0].indices[0];
    EXPECT_EQ(affine.vars, (std::vector<std::string>{"q", "s"}));
    EXPECT_EQ(affine.offset, 0);
    EXPECT_FALSE(affine.isSimpleVar());
    EXPECT_EQ(e.iterationVars(), (std::vector<std::string>{"q", "s"}));
}

TEST(EinsumParse, ConstantIndicesFftStep)
{
    const Expression e =
        parseExpression("E0[k0] = P[0, k0, n1, 0] * X[n1, 0]");
    const auto& idx = e.inputs[0].indices;
    ASSERT_EQ(idx.size(), 4u);
    EXPECT_TRUE(idx[0].isConstant());
    EXPECT_EQ(idx[0].offset, 0);
    EXPECT_EQ(idx[1].vars, (std::vector<std::string>{"k0"}));
    EXPECT_TRUE(idx[3].isConstant());
    EXPECT_EQ(e.output.name, "E0");
}

TEST(EinsumParse, WholeTensorCopy)
{
    const Expression e = parseExpression("P1 = P0");
    EXPECT_EQ(e.kind, OpKind::Assign);
    EXPECT_TRUE(e.output.indices.empty());
    EXPECT_TRUE(e.inputs[0].indices.empty());
}

TEST(EinsumParse, ThreeOperandProductMttkrp)
{
    const Expression e =
        parseExpression("C[i, r] = T[i, j, k] * B[j, r] * A[k, r]");
    EXPECT_EQ(e.kind, OpKind::Multiply);
    EXPECT_EQ(e.inputs.size(), 3u);
    EXPECT_EQ(e.reductionVars(), (std::vector<std::string>{"j", "k"}));
}

TEST(EinsumParse, RejectsMalformed)
{
    EXPECT_THROW(parseExpression("no equals sign"), SpecError);
    EXPECT_THROW(parseExpression("Z[m] ="), SpecError);
    EXPECT_THROW(parseExpression("Z[m+1] = A[m]"), SpecError);
    EXPECT_THROW(parseExpression("Z[m] = A[m * B[m]"), SpecError);
    EXPECT_THROW(parseExpression("Z[m] = A[m] + B[m] * C[m]"),
                 SpecError);
}

TEST(EinsumParse, ToStringRoundTrips)
{
    for (const char* text :
         {"Z[m,n] = A[k,m] * B[k,n]", "Z[m,n] = T[k,m,n]",
          "T[k,m,n] = take(A[k,m], B[k,n], 1)",
          "M[v] = NP[v] - MP[v]", "O[q] = I[q+s] * F[s]"}) {
        const Expression e = parseExpression(text);
        const Expression again = parseExpression(e.toString());
        EXPECT_EQ(again.toString(), e.toString()) << text;
    }
}

TEST(RankVarMapping, UppercaseConvention)
{
    EXPECT_EQ(rankOfVar("k"), "K");
    EXPECT_EQ(rankOfVar("k0"), "K0");
    EXPECT_EQ(rankOfVar("km1"), "KM1");
    EXPECT_EQ(varOfRank("KM0"), "km0");
}

namespace
{

EinsumSpec
outerSpaceSpec()
{
    const std::string text = "declaration:\n"
                             "  A: [K, M]\n"
                             "  B: [K, N]\n"
                             "  T: [K, M, N]\n"
                             "  Z: [M, N]\n"
                             "expressions:\n"
                             "  - T[k, m, n] = A[k, m] * B[k, n]\n"
                             "  - Z[m, n] = T[k, m, n]\n";
    return EinsumSpec::parse(yaml::parse(text));
}

} // namespace

TEST(EinsumSpec, OuterSpaceCascade)
{
    const EinsumSpec spec = outerSpaceSpec();
    EXPECT_EQ(spec.expressions.size(), 2u);
    EXPECT_EQ(spec.producedTensors(),
              (std::vector<std::string>{"T", "Z"}));
    EXPECT_EQ(spec.inputTensors(), (std::vector<std::string>{"A", "B"}));
    EXPECT_EQ(spec.resultTensor(), "Z");
    EXPECT_EQ(spec.producerOf("T"), 0);
    EXPECT_EQ(spec.producerOf("A"), -1);
    EXPECT_EQ(spec.consumersOf("T"), (std::vector<int>{1}));
    EXPECT_EQ(spec.consumersOf("A"), (std::vector<int>{0}));
}

TEST(EinsumSpec, UndeclaredTensorThrows)
{
    const std::string text = "declaration:\n"
                             "  A: [K]\n"
                             "expressions:\n"
                             "  - Z[k] = A[k]\n";
    EXPECT_THROW(EinsumSpec::parse(yaml::parse(text)), SpecError);
}

TEST(EinsumSpec, ArityMismatchThrows)
{
    const std::string text = "declaration:\n"
                             "  A: [K, M]\n"
                             "  Z: [K]\n"
                             "expressions:\n"
                             "  - Z[k] = A[k]\n";
    EXPECT_THROW(EinsumSpec::parse(yaml::parse(text)), SpecError);
}

TEST(EinsumSpec, SelfReferenceThrows)
{
    const std::string text = "declaration:\n"
                             "  A: [K]\n"
                             "expressions:\n"
                             "  - A[k] = A[k]\n";
    EXPECT_THROW(EinsumSpec::parse(yaml::parse(text)), SpecError);
}

TEST(EinsumSpec, SigmaThreeStageCascade)
{
    const std::string text =
        "declaration:\n"
        "  A: [K, M]\n"
        "  B: [K, N]\n"
        "  S: [K, M]\n"
        "  T: [K, M]\n"
        "  Z: [M, N]\n"
        "expressions:\n"
        "  - S[k, m] = take(A[k, m], B[k, n], 0)\n"
        "  - T[k, m] = take(A[k, m], S[k, m], 0)\n"
        "  - Z[m, n] = T[k, m] * B[k, n]\n";
    const EinsumSpec spec = EinsumSpec::parse(yaml::parse(text));
    EXPECT_EQ(spec.expressions.size(), 3u);
    EXPECT_EQ(spec.consumersOf("B"), (std::vector<int>{0, 2}));
    EXPECT_EQ(spec.consumersOf("S"), (std::vector<int>{1}));
    EXPECT_EQ(spec.expressions[0].kind, OpKind::Take);
    EXPECT_EQ(spec.expressions[0].takeArg, 0);
}

TEST(EinsumSpec, LastProducerWins)
{
    // GraphDynS re-assigns P0 late in the cascade.
    const std::string text = "declaration:\n"
                             "  P0: [V]\n"
                             "  R: [V]\n"
                             "  M: [V]\n"
                             "expressions:\n"
                             "  - M[v] = R[v] + P0[v]\n"
                             "  - R[v] = M[v]\n";
    const EinsumSpec spec = EinsumSpec::parse(yaml::parse(text));
    EXPECT_EQ(spec.producerOf("R"), 1);
}

} // namespace
} // namespace teaal::einsum
