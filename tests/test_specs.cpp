/**
 * @file
 * Unit tests for the mapping, format, architecture, and binding
 * specification layers (paper §4.1).
 */
#include <gtest/gtest.h>

#include "arch/arch.hpp"
#include "binding/binding.hpp"
#include "format/format.hpp"
#include "mapping/mapping.hpp"
#include "util/error.hpp"
#include "yaml/yaml.hpp"

namespace teaal
{
namespace
{

// ---------------------------------------------------------------- mapping

TEST(Mapping, ParseDirectives)
{
    mapping::ParamMap params{{"K1", 64}};
    const auto flat =
        mapping::PartitionDirective::parse("flatten()", params);
    EXPECT_EQ(flat.kind, mapping::PartitionDirective::Kind::Flatten);

    const auto shape =
        mapping::PartitionDirective::parse("uniform_shape(128)", params);
    EXPECT_EQ(shape.kind,
              mapping::PartitionDirective::Kind::UniformShape);
    EXPECT_EQ(shape.tile, 128);

    const auto sym =
        mapping::PartitionDirective::parse("uniform_shape(K1)", params);
    EXPECT_EQ(sym.tile, 64);

    const auto occ = mapping::PartitionDirective::parse(
        "uniform_occupancy(A.256)", params);
    EXPECT_EQ(occ.kind,
              mapping::PartitionDirective::Kind::UniformOccupancy);
    EXPECT_EQ(occ.leader, "A");
    EXPECT_EQ(occ.chunk, 256u);
}

TEST(Mapping, DirectiveErrors)
{
    mapping::ParamMap params;
    EXPECT_THROW(mapping::PartitionDirective::parse("bogus(1)", params),
                 SpecError);
    EXPECT_THROW(
        mapping::PartitionDirective::parse("uniform_shape(K9)", params),
        SpecError);
    EXPECT_THROW(mapping::PartitionDirective::parse(
                     "uniform_occupancy(A256)", params),
                 SpecError);
    EXPECT_THROW(
        mapping::PartitionDirective::parse("uniform_shape(0)", params),
        SpecError);
}

TEST(Mapping, ResultRankNames)
{
    mapping::RankPartitioning one;
    one.sourceRanks = {"K"};
    one.directives = {mapping::PartitionDirective::parse(
        "uniform_shape(4)", {})};
    EXPECT_EQ(one.resultRanks(),
              (std::vector<std::string>{"K1", "K0"}));

    mapping::RankPartitioning two;
    two.sourceRanks = {"K"};
    two.directives = {
        mapping::PartitionDirective::parse("uniform_shape(16)", {}),
        mapping::PartitionDirective::parse("uniform_shape(4)", {})};
    EXPECT_EQ(two.resultRanks(),
              (std::vector<std::string>{"K2", "K1", "K0"}));

    mapping::RankPartitioning flat;
    flat.sourceRanks = {"K", "M"};
    flat.directives = {
        mapping::PartitionDirective::parse("flatten()", {})};
    EXPECT_TRUE(flat.flattenOnly());
    EXPECT_EQ(flat.baseRank(), "KM");
    EXPECT_EQ(flat.resultRanks(), (std::vector<std::string>{"KM"}));

    // SIGMA's MK0 partitioned by occupancy -> MK01, MK00.
    mapping::RankPartitioning nested;
    nested.sourceRanks = {"MK0"};
    nested.directives = {mapping::PartitionDirective::parse(
        "uniform_occupancy(T.16384)", {})};
    EXPECT_EQ(nested.resultRanks(),
              (std::vector<std::string>{"MK01", "MK00"}));
}

TEST(Mapping, ParseOuterSpaceFigure3)
{
    const std::string text =
        "rank-order:\n"
        "  A: [K, M]\n"
        "  T: [M, K, N]\n"
        "partitioning:\n"
        "  T:\n"
        "    (K, M): [flatten()]\n"
        "    KM: [uniform_occupancy(A.256), uniform_occupancy(A.16)]\n"
        "  Z:\n"
        "    M: [uniform_occupancy(T.128), uniform_occupancy(T.8)]\n"
        "loop-order:\n"
        "  T: [KM2, KM1, KM0, N]\n"
        "  Z: [M2, M1, M0, N, K]\n"
        "spacetime:\n"
        "  T:\n"
        "    space: [KM1, KM0]\n"
        "    time: [KM2, N]\n"
        "  Z:\n"
        "    space: [M1, M0]\n"
        "    time: [M2, N, K]\n";
    const auto spec = mapping::MappingSpec::parse(yaml::parse(text));
    EXPECT_EQ(spec.rankOrder("A"), (std::vector<std::string>{"K", "M"}));
    EXPECT_EQ(spec.rankOrder("T"),
              (std::vector<std::string>{"M", "K", "N"}));
    EXPECT_TRUE(spec.rankOrder("Q").empty());

    const auto& t = spec.einsum("T");
    ASSERT_EQ(t.partitioning.size(), 2u);
    EXPECT_EQ(t.partitioning[0].baseRank(), "KM");
    EXPECT_TRUE(t.partitioning[0].flattenOnly());
    EXPECT_EQ(t.partitioning[1].resultRanks(),
              (std::vector<std::string>{"KM2", "KM1", "KM0"}));
    EXPECT_EQ(t.loopOrder,
              (std::vector<std::string>{"KM2", "KM1", "KM0", "N"}));
    ASSERT_EQ(t.space.size(), 2u);
    EXPECT_EQ(t.space[0].rank, "KM1");
    EXPECT_EQ(t.time[0].rank, "KM2");

    const auto* group = t.groupFor("KM");
    ASSERT_NE(group, nullptr);
    EXPECT_EQ(group->baseRank(), "KM");
}

TEST(Mapping, SpacetimeMustCoverLoopOrder)
{
    const std::string text = "loop-order:\n"
                             "  Z: [M, N, K]\n"
                             "spacetime:\n"
                             "  Z:\n"
                             "    space: [M]\n"
                             "    time: [N]\n";
    EXPECT_THROW(mapping::MappingSpec::parse(yaml::parse(text)),
                 SpecError);
}

TEST(Mapping, CoordTagParsed)
{
    const auto e = mapping::SpaceTimeEntry::parse("N.coord");
    EXPECT_EQ(e.rank, "N");
    EXPECT_TRUE(e.coordSpace);
    const auto f = mapping::SpaceTimeEntry::parse("K1");
    EXPECT_FALSE(f.coordSpace);
}

TEST(Mapping, TuplePartitioningRequiresFlatten)
{
    const std::string text =
        "partitioning:\n"
        "  T:\n"
        "    (K, M): [uniform_shape(4)]\n";
    EXPECT_THROW(mapping::MappingSpec::parse(yaml::parse(text)),
                 SpecError);
}

// ----------------------------------------------------------------- format

TEST(Format, ParseOuterSpaceLinkedLists)
{
    // Paper Figure 5b.
    const std::string text = "T:\n"
                             "  LinkedLists:\n"
                             "    M:\n"
                             "      format: U\n"
                             "      pbits: 32\n"
                             "    K:\n"
                             "      format: C\n"
                             "    N:\n"
                             "      format: C\n"
                             "      fhbits: 32\n"
                             "      layout: interleaved\n"
                             "      cbits: 32\n"
                             "      pbits: 64\n";
    const auto spec = fmt::FormatSpec::parse(yaml::parse(text));
    ASSERT_TRUE(spec.hasTensor("T"));
    const auto& tf = spec.get("T", "LinkedLists");
    EXPECT_EQ(tf.rankFormat("M").type, fmt::RankFormat::Type::U);
    EXPECT_EQ(tf.rankFormat("M").payloadBits(false), 32);
    EXPECT_EQ(tf.rankFormat("N").layout,
              fmt::RankFormat::Layout::Interleaved);
    EXPECT_EQ(tf.rankFormat("N").headerBits(), 32);
    // Partitioned rank falls back to its base.
    EXPECT_EQ(tf.rankFormat("N0").headerBits(), 32);
}

TEST(Format, DefaultsPerType)
{
    fmt::RankFormat u;
    u.type = fmt::RankFormat::Type::U;
    EXPECT_EQ(u.coordBits(), 0);
    fmt::RankFormat c;
    EXPECT_EQ(c.coordBits(), 32);
    EXPECT_EQ(c.payloadBits(true), 64);
    EXPECT_EQ(c.payloadBits(false), 32);
    fmt::RankFormat b;
    b.type = fmt::RankFormat::Type::B;
    EXPECT_EQ(b.coordBits(), 1);
}

TEST(Format, FiberBitsByType)
{
    fmt::RankFormat c; // compressed, defaults: 32c + 64p at leaf
    EXPECT_EQ(fmt::fiberBits(c, 10, 1000, true), 10u * (32 + 64));
    fmt::RankFormat u;
    u.type = fmt::RankFormat::Type::U;
    u.pbits = 32;
    // Uncompressed: sized by shape regardless of occupancy.
    EXPECT_EQ(fmt::fiberBits(u, 10, 100, false), 100u * 32);
    fmt::RankFormat b;
    b.type = fmt::RankFormat::Type::B;
    b.pbits = 64;
    EXPECT_EQ(fmt::fiberBits(b, 10, 100, true), 100u * 1 + 10u * 64);
}

TEST(Format, TensorBitsCsrLike)
{
    // 2x4 matrix [M, K], 3 nnz, CSR-like: U row pointers + C columns.
    const auto t = ft::Tensor::fromCoo(
        "A", {"M", "K"}, {2, 4},
        {{{0, 1}, 1.0}, {{0, 3}, 2.0}, {{1, 2}, 3.0}});
    fmt::TensorFormat tf;
    tf.config = "CSR";
    fmt::RankFormat rows;
    rows.type = fmt::RankFormat::Type::U;
    rows.pbits = 32;
    fmt::RankFormat cols;
    cols.type = fmt::RankFormat::Type::C;
    cols.cbits = 32;
    cols.pbits = 64;
    tf.ranks["M"] = rows;
    tf.ranks["K"] = cols;
    // M rank: 2 (shape) * 32; K rank: 3 nnz * (32 + 64).
    EXPECT_EQ(fmt::tensorBits(tf, t), 2u * 32 + 3u * 96);
}

TEST(Format, SubtreeBitsForEagerLoads)
{
    const auto t = ft::Tensor::fromCoo(
        "A", {"M", "K"}, {2, 4},
        {{{0, 1}, 1.0}, {{0, 3}, 2.0}, {{1, 2}, 3.0}});
    fmt::TensorFormat tf; // all-default compressed
    const auto& root = *t.root();
    // Subtree under M=0: a K fiber with 2 leaves: 2 * (32 + 64).
    const auto pos = root.find(0);
    ASSERT_TRUE(pos.has_value());
    EXPECT_EQ(fmt::subtreeBits(tf, t.rankIds(), root.payloadAt(*pos), 1),
              2u * 96);
}

TEST(Format, MissingTensorGetsDefault)
{
    fmt::FormatSpec spec;
    const auto& tf = spec.get("Unknown");
    EXPECT_EQ(tf.config, "default");
    EXPECT_EQ(tf.rankFormat("X").coordBits(), 32);
}

TEST(Format, AmbiguousConfigThrows)
{
    fmt::FormatSpec spec;
    fmt::TensorFormat a;
    a.config = "one";
    fmt::TensorFormat b;
    b.config = "two";
    spec.add("T", a);
    spec.add("T", b);
    EXPECT_THROW(spec.get("T"), SpecError);
    EXPECT_NO_THROW(spec.get("T", "one"));
    EXPECT_THROW(spec.get("T", "three"), SpecError);
}

// ------------------------------------------------------------------- arch

namespace
{

const char* kOuterSpaceMergeArch = R"(
Merge:
  clock: 1.5e9
  subtree:
    - name: System
      local:
        - name: HBM
          class: DRAM
          attributes:
            bandwidth: 128
      subtree:
        - name: PT
          num: 16
          local:
            - name: L0Cache
              class: Buffer
              attributes:
                type: cache
                width: 64
                depth: 2048
          subtree:
            - name: PE
              num: 8
              local:
                - name: ALU
                  class: Compute
                  attributes:
                    type: add
)";

} // namespace

TEST(Arch, ParseHierarchy)
{
    const auto spec = arch::ArchSpec::parse(yaml::parse(
        kOuterSpaceMergeArch));
    const auto& topo = spec.topology("Merge");
    EXPECT_DOUBLE_EQ(topo.clock, 1.5e9);
    EXPECT_EQ(topo.root.name, "System");
    long instances = 0;
    const auto* alu = topo.findComponent("ALU", &instances);
    ASSERT_NE(alu, nullptr);
    EXPECT_EQ(alu->cls, arch::ComponentClass::Compute);
    EXPECT_EQ(instances, 16 * 8);
    const auto* cache = topo.findComponent("L0Cache", &instances);
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(instances, 16);
    EXPECT_EQ(cache->attrString("type", ""), "cache");
    EXPECT_EQ(cache->attrLong("depth", 0), 2048);
    EXPECT_EQ(topo.findComponent("nonexistent"), nullptr);
}

TEST(Arch, AllComponentsEnumerated)
{
    const auto spec = arch::ArchSpec::parse(yaml::parse(
        kOuterSpaceMergeArch));
    const auto all = spec.topology("Merge").allComponents();
    EXPECT_EQ(all.size(), 3u);
}

TEST(Arch, AttributeAccessors)
{
    arch::Component c;
    c.name = "M";
    c.attributes["bandwidth"] = "68.256";
    EXPECT_DOUBLE_EQ(c.attrDouble("bandwidth", 0), 68.256);
    EXPECT_DOUBLE_EQ(c.attrDouble("missing", 1.5), 1.5);
    EXPECT_DOUBLE_EQ(c.requireDouble("bandwidth"), 68.256);
    EXPECT_THROW(c.requireDouble("missing"), SpecError);
}

TEST(Arch, ClassNames)
{
    EXPECT_EQ(arch::componentClassFromString("dram"),
              arch::ComponentClass::DRAM);
    EXPECT_EQ(arch::componentClassFromString("Merger"),
              arch::ComponentClass::Merger);
    EXPECT_THROW(arch::componentClassFromString("gpu"), SpecError);
    EXPECT_EQ(arch::componentClassName(arch::ComponentClass::Buffer),
              "Buffer");
}

TEST(Arch, SingleTopologyDefaultLookup)
{
    const auto spec = arch::ArchSpec::parse(yaml::parse(
        kOuterSpaceMergeArch));
    EXPECT_EQ(spec.topology().name, "Merge");
    EXPECT_EQ(spec.topologyNames(),
              (std::vector<std::string>{"Merge"}));
}

// ---------------------------------------------------------------- binding

TEST(Binding, ParseStorageAndOps)
{
    const std::string text = "Z:\n"
                             "  config: Merge\n"
                             "  components:\n"
                             "    - component: L0Cache\n"
                             "      bindings:\n"
                             "        - tensor: T\n"
                             "          config: LinkedLists\n"
                             "          rank: N\n"
                             "          type: elem\n"
                             "          style: lazy\n"
                             "          evict-on: M\n"
                             "    - component: ALU\n"
                             "      bindings:\n"
                             "        - op: add\n";
    const auto spec = binding::BindingSpec::parse(yaml::parse(text));
    ASSERT_TRUE(spec.hasEinsum("Z"));
    const auto& eb = spec.einsum("Z");
    EXPECT_EQ(eb.topology, "Merge");
    const auto* cache = eb.findComponent("L0Cache");
    ASSERT_NE(cache, nullptr);
    ASSERT_EQ(cache->storage.size(), 1u);
    EXPECT_EQ(cache->storage[0].tensor, "T");
    EXPECT_EQ(cache->storage[0].config, "LinkedLists");
    EXPECT_EQ(cache->storage[0].rank, "N");
    EXPECT_EQ(cache->storage[0].type, binding::DataType::Elem);
    EXPECT_EQ(cache->storage[0].style, binding::Style::Lazy);
    EXPECT_EQ(cache->storage[0].evictOn, "M");
    const auto* alu = eb.findComponent("ALU");
    ASSERT_NE(alu, nullptr);
    ASSERT_EQ(alu->ops.size(), 1u);
    EXPECT_EQ(alu->ops[0].op, "add");
    EXPECT_EQ(eb.findComponent("zzz"), nullptr);
}

TEST(Binding, DefaultsWhenAbsent)
{
    binding::BindingSpec spec;
    EXPECT_FALSE(spec.hasEinsum("Q"));
    EXPECT_TRUE(spec.einsum("Q").components.empty());
}

TEST(Binding, BadEnumsThrow)
{
    const std::string text = "Z:\n"
                             "  components:\n"
                             "    - component: X\n"
                             "      bindings:\n"
                             "        - tensor: T\n"
                             "          type: bogus\n";
    EXPECT_THROW(binding::BindingSpec::parse(yaml::parse(text)),
                 SpecError);
}

} // namespace
} // namespace teaal
