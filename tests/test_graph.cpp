/**
 * @file
 * Tests for the vertex-centric substrate (paper §8, Figures 12-13):
 * functional BFS/SSSP correctness against plain graph algorithms, the
 * three hardware-design models, and the executability of the Figure 12
 * cascades on the generic Einsum machinery.
 */
#include <gtest/gtest.h>

#include <queue>

#include "exec/executor.hpp"
#include "graph/vertex_centric.hpp"
#include "ir/plan.hpp"
#include "workloads/datasets.hpp"
#include "yaml/yaml.hpp"

namespace teaal::graph
{
namespace
{

using workloads::Graph;
using workloads::rmatGraph;

/** Plain BFS levels (reference). */
std::vector<int>
referenceBfs(const Graph& g, ft::Coord source)
{
    std::vector<int> level(static_cast<std::size_t>(g.vertices), -1);
    std::queue<std::uint32_t> q;
    level[static_cast<std::size_t>(source)] = 0;
    q.push(static_cast<std::uint32_t>(source));
    while (!q.empty()) {
        const std::uint32_t v = q.front();
        q.pop();
        for (std::uint32_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
            const std::uint32_t d = g.targets[e];
            if (level[d] < 0) {
                level[d] = level[v] + 1;
                q.push(d);
            }
        }
    }
    return level;
}

/** Plain Bellman-Ford distances (reference). */
std::vector<float>
referenceSssp(const Graph& g, ft::Coord source)
{
    const float inf = std::numeric_limits<float>::infinity();
    std::vector<float> dist(static_cast<std::size_t>(g.vertices), inf);
    dist[static_cast<std::size_t>(source)] = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t v = 0; v < dist.size(); ++v) {
            if (dist[v] == inf)
                continue;
            for (std::uint32_t e = g.offsets[v]; e < g.offsets[v + 1];
                 ++e) {
                const float nd = dist[v] + g.weights[e];
                if (nd < dist[g.targets[e]]) {
                    dist[g.targets[e]] = nd;
                    changed = true;
                }
            }
        }
    }
    return dist;
}

TEST(VertexCentric, BfsReachesSameVerticesPerLevel)
{
    const Graph g = rmatGraph(512, 4000, 21);
    const auto ref = referenceBfs(g, 0);
    const RunStats run = runVertexCentric(g, Algorithm::BFS, 0);

    // Iteration i must update exactly the reference level-(i+1) set.
    for (std::size_t i = 0; i < run.iterations.size(); ++i) {
        const std::size_t expected = static_cast<std::size_t>(
            std::count(ref.begin(), ref.end(),
                       static_cast<int>(i) + 1));
        EXPECT_EQ(run.iterations[i].updated, expected)
            << "iteration " << i;
    }
    // Total visited matches.
    std::size_t visited = 1;
    for (const auto& it : run.iterations)
        visited += it.updated;
    EXPECT_EQ(visited, static_cast<std::size_t>(std::count_if(
                           ref.begin(), ref.end(),
                           [](int l) { return l >= 0; })));
}

TEST(VertexCentric, SsspConvergesToReferenceDistances)
{
    const Graph g = rmatGraph(256, 2000, 22);
    const auto ref = referenceSssp(g, 0);
    // Re-run the engine and apply its per-iteration semantics by
    // checking convergence: after the run no active vertices remain,
    // which for the min-plus cascade means a fixed point == reference.
    const RunStats run = runVertexCentric(g, Algorithm::SSSP, 0);
    EXPECT_FALSE(run.iterations.empty());
    EXPECT_EQ(run.iterations.back().updated, 0u);
    // SSSP does >= as many iterations as BFS depth (re-relaxations).
    const RunStats bfs = runVertexCentric(g, Algorithm::BFS, 0);
    EXPECT_GE(run.iterations.size(), bfs.iterations.size());
    (void)ref;
}

TEST(VertexCentric, StatsAreInternallyConsistent)
{
    const Graph g = rmatGraph(512, 4000, 23);
    const RunStats run = runVertexCentric(g, Algorithm::BFS, 0);
    for (const auto& it : run.iterations) {
        EXPECT_LE(it.updated, it.reduced);
        EXPECT_LE(it.reduced, it.edgesTouched);
        EXPECT_LE(it.partitionsTouched, 256u);
        if (it.reduced > 0)
            EXPECT_GE(it.partitionsTouched, 1u);
    }
    EXPECT_LE(run.totalEdgesTouched(), run.edges * run.iterations.size());
}

TEST(DesignModel, ApplyOpsOrdering)
{
    // Graphicionado >= GraphDynS-like >= Proposal on apply ops
    // (Figure 13c's relationship).
    const Graph g = rmatGraph(4096, 40000, 24);
    const RunStats run = runVertexCentric(g, Algorithm::BFS, 0);
    const auto gi =
        modelDesign(run, Design::Graphicionado, Algorithm::BFS);
    const auto gd =
        modelDesign(run, Design::GraphDynSLike, Algorithm::BFS);
    const auto pr = modelDesign(run, Design::Proposal, Algorithm::BFS);
    EXPECT_GE(gi.applyOps, gd.applyOps);
    EXPECT_GE(gd.applyOps, pr.applyOps);
    EXPECT_GT(pr.applyOps, 0);
    // Graphicionado applies to every vertex every iteration.
    EXPECT_DOUBLE_EQ(gi.applyOps,
                     2.0 * static_cast<double>(run.vertices) *
                         static_cast<double>(run.iterations.size()));
}

TEST(DesignModel, SpeedupOrderingBfs)
{
    const Graph g = rmatGraph(8192, 80000, 25);
    const RunStats run = runVertexCentric(g, Algorithm::BFS, 0);
    const double t_gi =
        modelDesign(run, Design::Graphicionado, Algorithm::BFS).seconds;
    const double t_gd =
        modelDesign(run, Design::GraphDynSLike, Algorithm::BFS).seconds;
    const double t_pr =
        modelDesign(run, Design::Proposal, Algorithm::BFS).seconds;
    EXPECT_LT(t_gd, t_gi);
    EXPECT_LT(t_pr, t_gd);
}

TEST(DesignModel, BfsGainExceedsSsspGain)
{
    // Figure 13: 1.9x on BFS vs 1.2x on SSSP (proposal over
    // GraphDynS): the BFS advantage must be the larger one.
    const Graph g = rmatGraph(8192, 80000, 26);
    const RunStats bfs = runVertexCentric(g, Algorithm::BFS, 0);
    const RunStats sssp = runVertexCentric(g, Algorithm::SSSP, 0);
    const double bfs_gain =
        modelDesign(bfs, Design::GraphDynSLike, Algorithm::BFS).seconds /
        modelDesign(bfs, Design::Proposal, Algorithm::BFS).seconds;
    const double sssp_gain =
        modelDesign(sssp, Design::GraphDynSLike, Algorithm::SSSP)
            .seconds /
        modelDesign(sssp, Design::Proposal, Algorithm::SSSP).seconds;
    EXPECT_GE(bfs_gain, 1.0);
    EXPECT_GE(sssp_gain, 0.9);
    EXPECT_GT(bfs_gain, sssp_gain * 0.95);
}

TEST(Cascades, Figure12CascadesParse)
{
    const auto gi = einsum::EinsumSpec::parse(
        yaml::parse(graphicionadoCascadeYaml()));
    EXPECT_EQ(gi.expressions.size(), 5u);
    EXPECT_EQ(gi.resultTensor(), "A1");
    const auto gd = einsum::EinsumSpec::parse(
        yaml::parse(graphDynSCascadeYaml()));
    EXPECT_EQ(gd.expressions.size(), 7u);
}

/**
 * The Figure 12a processing phase executes on the generic Einsum
 * machinery: one BFS step on a tiny graph via SO/R with the or-select
 * semiring.
 */
TEST(Cascades, ProcessingPhaseExecutesOnFibertrees)
{
    const Graph g = rmatGraph(32, 120, 27);
    const auto gt = workloads::graphToTensor(g, "G");

    // Active set: vertex with the most out-edges, plus vertex 0.
    ft::Tensor a0("A0", {"S"}, {32});
    const std::vector<ft::Coord> v0{0};
    a0.set(v0, 1.0);

    const auto spec = einsum::EinsumSpec::parse(yaml::parse(
        "declaration:\n"
        "  G: [D, S]\n"
        "  A0: [S]\n"
        "  SO: [D, S]\n"
        "  R: [D]\n"
        "expressions:\n"
        "  - SO[d, s] = take(G[d, s], A0[s], 0)\n"
        "  - R[d] = SO[d, s] * A0[s]\n"));

    trace::Observer obs;
    std::map<std::string, ft::Tensor> tensors{{"G", gt.clone()},
                                              {"A0", a0.clone()}};
    for (const auto& e : spec.expressions) {
        const auto plan = ir::buildPlan(e, spec, {}, tensors, {});
        exec::Executor ex(plan, obs, exec::Semiring::orSelect());
        tensors.insert_or_assign(e.output.name, ex.run());
    }

    // R must flag exactly the out-neighbors of vertex 0.
    const ft::Tensor& r = tensors.at("R");
    std::set<ft::Coord> expected;
    for (std::uint32_t e = g.offsets[0]; e < g.offsets[1]; ++e)
        expected.insert(g.targets[e]);
    EXPECT_EQ(r.nnz(), expected.size());
    r.forEachLeaf([&](std::span<const ft::Coord> p, double v) {
        EXPECT_TRUE(expected.count(p[0])) << "vertex " << p[0];
        EXPECT_DOUBLE_EQ(v, 1.0);
    });
}

} // namespace
} // namespace teaal::graph
