/**
 * @file
 * Tests for the analytic model tier (model/analytic/): the shared
 * occupancy-hint helper, the symbolic statistics algebra, and the
 * headline accuracy contract — the analytic estimate tracks the trace
 * simulator within a bounded relative factor on all four Table 1
 * accelerators, for pointer and packed workloads alike.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <iostream>

#include "accelerators/accelerators.hpp"
#include "compiler/pipeline.hpp"
#include "fibertree/occupancy.hpp"
#include "model/analytic/estimator.hpp"
#include "storage/packed.hpp"
#include "util/logging.hpp"
#include "workloads/datasets.hpp"

namespace teaal
{
namespace
{

using compiler::Workload;

// ------------------------------------------------ occupancy helper

TEST(OccupancyHints, SharedHelperMatchesManualRatios)
{
    const std::vector<std::size_t> counts{4, 12, 60};
    const auto hints = ft::occupancyHintsFromCounts(counts, 3);
    ASSERT_EQ(hints.size(), 3u);
    EXPECT_DOUBLE_EQ(hints[0], 4.0);
    EXPECT_DOUBLE_EQ(hints[1], 3.0);
    EXPECT_DOUBLE_EQ(hints[2], 5.0);
}

TEST(OccupancyHints, ZeroAndShortCountsAreSafe)
{
    const auto empty =
        ft::occupancyHintsFromCounts(std::vector<std::size_t>{}, 2);
    ASSERT_EQ(empty.size(), 2u);
    EXPECT_DOUBLE_EQ(empty[0], 0.0);
    EXPECT_DOUBLE_EQ(empty[1], 0.0);
    const std::vector<std::size_t> zeros{0, 0};
    const auto z = ft::occupancyHintsFromCounts(zeros, 2);
    EXPECT_DOUBLE_EQ(z[0], 0.0);
    EXPECT_DOUBLE_EQ(z[1], 0.0);
}

TEST(OccupancyHints, TensorAndPackedAgree)
{
    const ft::Tensor t =
        workloads::uniformMatrix("A", 40, 30, 300, 7, {"K", "M"});
    const auto packed = storage::PackedTensor::fromTensor(t);
    const auto th = t.occupancyHints();
    const auto ph = packed.occupancyHints();
    ASSERT_EQ(th.size(), ph.size());
    for (std::size_t l = 0; l < th.size(); ++l)
        EXPECT_NEAR(th[l], ph[l], 1e-9) << "level " << l;
}

// ------------------------------------------- symbolic statistics

TEST(SymbolicStats, ExpectedDistinctBounds)
{
    namespace an = model::analytic;
    EXPECT_DOUBLE_EQ(an::expectedDistinct(0, 100), 0.0);
    EXPECT_DOUBLE_EQ(an::expectedDistinct(5, 1), 1.0);
    // Never exceeds draws or universe.
    EXPECT_LE(an::expectedDistinct(50, 100), 50.0);
    EXPECT_LE(an::expectedDistinct(1000, 100), 100.0);
    // Many draws saturate the universe.
    EXPECT_NEAR(an::expectedDistinct(1e6, 100), 100.0, 1e-6);
    // Few draws from a huge universe are almost all distinct.
    EXPECT_NEAR(an::expectedDistinct(10, 1e12), 10.0, 1e-6);
}

TEST(SymbolicStats, FromHintsAndTransformsPreserveNnz)
{
    namespace an = model::analytic;
    const ft::Tensor t =
        workloads::uniformMatrix("A", 64, 48, 500, 11, {"K", "M"});
    const auto sym = an::SymbolicTensor::fromHints(
        "A", t.ranks(), t.occupancyHints());
    EXPECT_NEAR(sym.nnz(), 500.0, 1e-6);

    const auto sw = an::swizzle(sym, {"M", "K"});
    EXPECT_NEAR(sw.nnz(), 500.0, 1e-6);
    EXPECT_EQ(sw.rankIds(), (std::vector<std::string>{"M", "K"}));

    const auto split = an::splitRankByShape(sym, "K", 16, "K1", "K0");
    EXPECT_NEAR(split.nnz(), 500.0, 1e-6);
    EXPECT_EQ(split.rankIds(),
              (std::vector<std::string>{"K1", "K0", "M"}));
    // Tiles per fiber never exceed the tile count or the occupancy.
    EXPECT_LE(split.counts[0], 4.0 + 1e-9);

    const auto flat = an::flattenRanks(sw, "M", "K");
    EXPECT_NEAR(flat.nnz(), 500.0, 1e-6);
    ASSERT_EQ(flat.ranks.size(), 1u);
    EXPECT_TRUE(flat.ranks[0].isFlattened());
    EXPECT_EQ(flat.ranks[0].shape, 48 * 64);
}

// ------------------------------------------------- accuracy bounds

struct AccuracyCase
{
    const char* name;
    compiler::Specification (*make)();
    /// Multiplicative accuracy bound: estimate/trace and trace/
    /// estimate both stay below this factor. Calibrated empirically
    /// (see bench/micro_analytic.cpp) with margin; the contract the
    /// autotuner relies on is *rank stability*, so a small constant
    /// factor is what matters, not percent-level agreement.
    double trafficBound;
    double computeBound;
    double secondsBound;
};

compiler::Specification
makeGamma()
{
    return accel::gamma();
}
compiler::Specification
makeOuterSpace()
{
    return accel::outerSpace();
}
compiler::Specification
makeExtensor()
{
    accel::ExTensorConfig cfg;
    // Tile the test-sized operands meaningfully (defaults are sized
    // for full-scale matrices and would degenerate to one tile).
    cfg.tileK1 = 512;
    cfg.tileK0 = 64;
    cfg.tileM1 = 512;
    cfg.tileM0 = 64;
    cfg.tileN1 = 512;
    cfg.tileN0 = 64;
    return accel::extensor(cfg);
}
compiler::Specification
makeSigma()
{
    return accel::sigma();
}

double
sumCounter(const std::vector<model::EinsumRecord>& records,
           const std::string& key)
{
    double total = 0;
    for (const model::EinsumRecord& r : records) {
        for (const auto& [name, ca] : r.components) {
            const auto it = ca.counts.find(key);
            if (it != ca.counts.end())
                total += it->second;
        }
    }
    return total;
}

double
ratioOf(double est, double ref)
{
    if (ref <= 0 && est <= 0)
        return 1.0;
    if (ref <= 0 || est <= 0)
        return std::numeric_limits<double>::infinity();
    return est > ref ? est / ref : ref / est;
}

void
checkAccuracy(const AccuracyCase& c, bool packed)
{
    SCOPED_TRACE(std::string(c.name) + (packed ? " packed" : " pointer"));
    // Uniform random operands: the analytic tier is an expected-value
    // model under uniform occupancy, so this is the distribution its
    // accuracy contract is stated on. (On skewed inputs the *ranking*
    // remains useful — see the autotuner tests — but first-moment
    // hints cannot see Sum(na_k * nb_k) correlation.)
    const ft::Tensor a =
        workloads::uniformMatrix("A", 600, 500, 4000, 21, {"K", "M"});
    const ft::Tensor b =
        workloads::uniformMatrix("B", 600, 550, 4000, 22, {"K", "N"});

    auto model = compiler::compile(c.make());
    Workload w;
    if (packed) {
        w.add("A", storage::PackedTensor::fromTensor(
                       a, model.spec().formats.getLenient("A")));
        w.add("B", storage::PackedTensor::fromTensor(
                       b, model.spec().formats.getLenient("B")));
    } else {
        w.add("A", a).add("B", b);
    }

    const auto traced = model.run(w);
    if (std::getenv("TEAAL_ANALYTIC_DEBUG") != nullptr)
        Logger::instance().setLevel(LogLevel::Debug);
    const auto est = model.estimate(w);
    Logger::instance().setLevel(LogLevel::Warn);

    const double t_traffic = traced.totalTrafficBytes();
    const double e_traffic = est.totalTrafficBytes();
    const double t_muls = sumCounter(traced.records, "mul_ops");
    const double e_muls = est.mulOps;
    const double t_secs = traced.perf.totalSeconds;
    const double e_secs = est.seconds();

    const double r_traffic = ratioOf(e_traffic, t_traffic);
    const double r_muls = ratioOf(e_muls, t_muls);
    const double r_secs = ratioOf(e_secs, t_secs);
    std::cout << "[analytic] " << c.name
              << (packed ? " packed" : " pointer")
              << "  traffic est/trace=" << e_traffic / t_traffic
              << "  muls est/trace=" << (t_muls > 0 ? e_muls / t_muls : 0)
              << "  secs est/trace=" << e_secs / t_secs << "\n";
    if (std::getenv("TEAAL_ANALYTIC_DEBUG") != nullptr) {
        for (const auto& [tensor, tt] : traced.traffic) {
            const auto eit = est.traffic.find(tensor);
            const double er = eit != est.traffic.end()
                                  ? eit->second.readBytes
                                  : 0;
            const double ew = eit != est.traffic.end()
                                  ? eit->second.writeBytes
                                  : 0;
            std::cout << "    " << tensor << " read est/trace=" << er
                      << "/" << tt.readBytes << " write est/trace="
                      << ew << "/" << tt.writeBytes << "\n";
        }
        for (const auto& [tensor, tt] : est.traffic) {
            if (!traced.traffic.count(tensor))
                std::cout << "    " << tensor
                          << " (est only) read=" << tt.readBytes
                          << " write=" << tt.writeBytes << "\n";
        }
        for (std::size_t i = 0; i < traced.perf.einsums.size() &&
                                i < est.perf.einsums.size();
             ++i) {
            const auto& tp = traced.perf.einsums[i];
            const auto& ep = est.perf.einsums[i];
            std::cout << "    einsum " << tp.output
                      << " secs trace=" << tp.seconds << " ("
                      << tp.bottleneck << ") est=" << ep.seconds << " ("
                      << ep.bottleneck << ")\n";
            for (const auto& [comp, secs] : tp.componentSeconds) {
                const auto it = ep.componentSeconds.find(comp);
                std::cout << "      " << comp << " trace=" << secs
                          << " est="
                          << (it != ep.componentSeconds.end()
                                  ? it->second
                                  : 0.0)
                          << "\n";
            }
            for (const auto& [cname, ca] :
                 traced.records[i].components) {
                if (ca.perPe.empty())
                    continue;
                double total = 0;
                for (const auto& [pe, load] : ca.perPe)
                    total += load;
                std::cout << "      perPe " << cname
                          << " n=" << ca.perPe.size()
                          << " total=" << total
                          << " max=" << ca.perPe.maxLoad() << "\n";
            }
        }
    }

    EXPECT_LT(r_traffic, c.trafficBound)
        << "traffic est=" << e_traffic << " trace=" << t_traffic;
    EXPECT_LT(r_muls, c.computeBound)
        << "muls est=" << e_muls << " trace=" << t_muls;
    EXPECT_LT(r_secs, c.secondsBound)
        << "seconds est=" << e_secs << " trace=" << t_secs;
}

// Calibrated on the uniform SpMSpM pair above (seeds 21/22); see the
// printed est/trace ratios. Observed worst cases: traffic 1.09x
// (sigma), compute 1.01x, seconds 1.57x (extensor). Bounds carry
// roughly 2x margin over the observed error so distribution drift
// does not flake the suite while still asserting real accuracy.
const AccuracyCase kCases[] = {
    {"gamma", &makeGamma, 1.5, 1.25, 2.0},
    {"outerspace", &makeOuterSpace, 1.5, 1.25, 2.0},
    {"extensor", &makeExtensor, 1.5, 1.25, 3.0},
    {"sigma", &makeSigma, 2.0, 1.25, 2.0},
};

TEST(AnalyticAccuracy, PointerWorkloads)
{
    for (const AccuracyCase& c : kCases)
        checkAccuracy(c, /*packed=*/false);
}

TEST(AnalyticAccuracy, PackedWorkloads)
{
    for (const AccuracyCase& c : kCases)
        checkAccuracy(c, /*packed=*/true);
}

TEST(AnalyticEstimate, CachesByFingerprint)
{
    const ft::Tensor a =
        workloads::uniformMatrix("A", 100, 80, 900, 31, {"K", "M"});
    const ft::Tensor b =
        workloads::uniformMatrix("B", 100, 90, 900, 32, {"K", "N"});
    auto model = compiler::compile(accel::gamma());
    Workload w;
    w.add("A", a).add("B", b);
    const auto first = model.estimate(w);
    EXPECT_FALSE(first.cacheHit);
    const auto second = model.estimate(w);
    EXPECT_TRUE(second.cacheHit);
    EXPECT_DOUBLE_EQ(first.seconds(), second.seconds());
    w.touch();
    const auto third = model.estimate(w);
    EXPECT_FALSE(third.cacheHit);
}

} // namespace
} // namespace teaal
