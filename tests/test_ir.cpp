/**
 * @file
 * White-box tests of the simulator generator (ir::buildPlan): loop
 * rank metadata, per-tensor actions, concordance-swizzle inference,
 * and error reporting — checked against the paper's own mappings.
 */
#include <gtest/gtest.h>

#include "exec/executor.hpp"
#include "fibertree/transform.hpp"
#include "ir/plan.hpp"
#include "util/random.hpp"
#include "workloads/datasets.hpp"
#include "yaml/yaml.hpp"

namespace teaal::ir
{
namespace
{

using einsum::EinsumSpec;
using mapping::MappingSpec;

std::map<std::string, ft::Tensor>
spmspmTensors(ft::Coord k = 32, ft::Coord m = 24, ft::Coord n = 28)
{
    std::map<std::string, ft::Tensor> t;
    t.emplace("A", workloads::uniformMatrix("A", k, m, 200, 1,
                                            {"K", "M"}));
    t.emplace("B", workloads::uniformMatrix("B", k, n, 200, 2,
                                            {"K", "N"}));
    return t;
}

const LevelAction*
actionFor(const TensorPlan& tp, LevelAction::Mode mode, int level)
{
    for (const LevelAction& a : tp.actions) {
        if (a.mode == mode && a.level == level)
            return &a;
    }
    return nullptr;
}

TEST(IrBuilder, PlainMatmulDefaultLoopOrder)
{
    const auto es = EinsumSpec::parse(yaml::parse(
        "declaration:\n  A: [K, M]\n  B: [K, N]\n  Z: [M, N]\n"
        "expressions:\n  - Z[m, n] = A[k, m] * B[k, n]\n"));
    const auto plan =
        buildPlan(es.expressions[0], es, {}, spmspmTensors(), {});
    // Default order: output vars then reduction vars -> [M, N, K].
    ASSERT_EQ(plan.loops.size(), 3u);
    EXPECT_EQ(plan.loops[0].name, "M");
    EXPECT_EQ(plan.loops[1].name, "N");
    EXPECT_EQ(plan.loops[2].name, "K");
    // A [K, M] must be swizzled to [M, K] for concordant traversal.
    const TensorPlan& a = plan.inputs[0];
    EXPECT_TRUE(a.swizzled);
    EXPECT_FALSE(a.swizzleOnline); // input, offline preprocessing
    EXPECT_EQ(a.prepared.rankIds(),
              (std::vector<std::string>{"M", "K"}));
    // Output produced directly in declared order.
    EXPECT_FALSE(plan.output.needsReorder);
}

TEST(IrBuilder, OuterSpaceMultiplyPhasePlan)
{
    const auto es = EinsumSpec::parse(yaml::parse(
        "declaration:\n  A: [K, M]\n  B: [K, N]\n  T: [K, M, N]\n"
        "  Z: [M, N]\n"
        "expressions:\n  - T[k, m, n] = A[k, m] * B[k, n]\n"
        "  - Z[m, n] = T[k, m, n]\n"));
    const auto ms = MappingSpec::parse(yaml::parse(
        "rank-order:\n  T: [M, K, N]\n"
        "partitioning:\n  T:\n    (K, M): [flatten()]\n"
        "    KM: [uniform_occupancy(A.16), uniform_occupancy(A.4)]\n"
        "loop-order:\n  T: [KM2, KM1, KM0, N]\n"
        "spacetime:\n  T:\n    space: [KM1, KM0]\n"
        "    time: [KM2, N]\n"));
    const auto plan = buildPlan(es.expressions[0], es, ms,
                                spmspmTensors(), {});

    // Loop metadata: KM2/KM1 are ranges, KM0 binds k and m by
    // unpacking the packed coordinate.
    EXPECT_TRUE(plan.loops[0].isUpperPartition);
    EXPECT_TRUE(plan.loops[1].isUpperPartition);
    EXPECT_TRUE(plan.loops[1].isSpace);
    EXPECT_EQ(plan.loops[1].spaceExtent, 4u); // 16/4 chunks
    const LoopRank& km0 = plan.loops[2];
    EXPECT_FALSE(km0.isUpperPartition);
    EXPECT_TRUE(km0.isSpace);
    EXPECT_EQ(km0.spaceExtent, 4u);
    EXPECT_EQ(km0.bindsVars, (std::vector<std::string>{"k", "m"}));
    ASSERT_EQ(km0.unpackStrides.size(), 2u);
    EXPECT_EQ(km0.unpackStrides[0], 24); // k stride = |M|
    EXPECT_EQ(km0.unpackStrides[1], 1);

    // A is the flattened+partitioned leader, fully co-iterated.
    const TensorPlan& a = plan.inputs[0];
    EXPECT_EQ(a.prepared.rankIds(),
              (std::vector<std::string>{"KM2", "KM1", "KM0"}));
    EXPECT_NE(actionFor(a, LevelAction::Mode::CoIterate, 0), nullptr);
    EXPECT_NE(actionFor(a, LevelAction::Mode::CoIterate, 2), nullptr);

    // B keeps [K, N]: K is looked up by the unpacked k at KM0.
    const TensorPlan& b = plan.inputs[1];
    EXPECT_EQ(b.prepared.rankIds(),
              (std::vector<std::string>{"K", "N"}));
    const LevelAction* lookup =
        actionFor(b, LevelAction::Mode::Lookup, 0);
    ASSERT_NE(lookup, nullptr);
    EXPECT_EQ(lookup->loopIndex, 2);
    EXPECT_EQ(lookup->expr.vars, (std::vector<std::string>{"k"}));

    // T produced [K, M, N] but stored [M, K, N]: reorder required.
    EXPECT_EQ(plan.output.productionOrder,
              (std::vector<std::string>{"K", "M", "N"}));
    EXPECT_TRUE(plan.output.needsReorder);
}

TEST(IrBuilder, GammaMergePhaseInfersOnlineSwizzle)
{
    const auto es = EinsumSpec::parse(yaml::parse(
        "declaration:\n  A: [K, M]\n  B: [K, N]\n  T: [K, M, N]\n"
        "  Z: [M, N]\n"
        "expressions:\n"
        "  - T[k, m, n] = take(A[k, m], B[k, n], 1)\n"
        "  - Z[m, n] = T[k, m, n] * A[k, m]\n"));
    const auto ms = MappingSpec::parse(yaml::parse(
        "rank-order:\n  A: [M, K]\n  T: [M, K, N]\n"
        "partitioning:\n"
        "  Z:\n    M: [uniform_occupancy(A.4)]\n"
        "    K: [uniform_occupancy(A.8)]\n"
        "loop-order:\n  Z: [M1, M0, K1, N, K0]\n"
        "spacetime:\n  Z:\n    space: [M0, K1]\n"
        "    time: [M1, N, K0]\n"));

    auto tensors = spmspmTensors();
    tensors.at("A") = ft::swizzle(tensors.at("A"), {"M", "K"});
    // Fake an intermediate T stored [M, K, N].
    tensors.emplace("T", ft::Tensor("T", {"M", "K", "N"}, {24, 32, 28}));
    const std::vector<ft::Coord> p{3, 5, 7};
    tensors.at("T").set(p, 1.0);

    const auto plan =
        buildPlan(es.expressions[1], es, ms, tensors, {"T"});

    // T must be swizzled [M,K,N] -> [M,N,K]: online (it is an
    // intermediate), charged to the merger — Gamma's merge step.
    const TensorPlan* t = nullptr;
    for (const TensorPlan& tp : plan.inputs) {
        if (tp.name == "T")
            t = &tp;
    }
    ASSERT_NE(t, nullptr);
    EXPECT_TRUE(t->swizzled);
    EXPECT_TRUE(t->swizzleOnline);
    EXPECT_EQ(t->prepared.rankIds(),
              (std::vector<std::string>{"M", "N", "K"}));
    // T follows A's occupancy boundaries: Slice at M1/K1.
    EXPECT_NE(actionFor(*t, LevelAction::Mode::Slice, 0), nullptr);
    EXPECT_NE(actionFor(*t, LevelAction::Mode::Slice, 2), nullptr);
}

TEST(IrBuilder, TakeProbeRanksMarked)
{
    const auto es = EinsumSpec::parse(yaml::parse(
        "declaration:\n  A: [K, M]\n  B: [K, N]\n  S: [K, M]\n"
        "expressions:\n  - S[k, m] = take(A[k, m], B[k, n], 0)\n"));
    const auto plan =
        buildPlan(es.expressions[0], es, {}, spmspmTensors(), {});
    // N is private to the non-copied operand: probe only.
    bool found = false;
    for (const LoopRank& lr : plan.loops) {
        if (lr.name == "N") {
            EXPECT_TRUE(lr.probeOnly);
            found = true;
        } else {
            EXPECT_FALSE(lr.probeOnly);
        }
    }
    EXPECT_TRUE(found);
}

TEST(IrBuilder, DenseDriveForConvolutionOutput)
{
    const auto es = EinsumSpec::parse(yaml::parse(
        "declaration:\n  I: [W]\n  F: [S]\n  O: [Q]\n"
        "expressions:\n  - O[q] = I[q+s] * F[s]\n"));
    std::map<std::string, ft::Tensor> tensors;
    tensors.emplace("I", ft::Tensor("I", {"W"}, {20}));
    tensors.emplace("F", ft::Tensor("F", {"S"}, {4}));
    const auto plan =
        buildPlan(es.expressions[0], es, {}, tensors, {});
    // Q has no driving tensor: dense range W - S + 1 = 17.
    ASSERT_EQ(plan.loops[0].name, "Q");
    EXPECT_EQ(plan.loops[0].denseExtent, 17);
    // I is accessed through an affine lookup triggered at S.
    const TensorPlan& i = plan.inputs[0];
    ASSERT_EQ(i.actions.size(), 1u);
    EXPECT_EQ(i.actions[0].mode, LevelAction::Mode::Lookup);
    EXPECT_EQ(i.actions[0].expr.vars,
              (std::vector<std::string>{"q", "s"}));
}

TEST(IrBuilder, ErrorsAreSpecErrors)
{
    const auto es = EinsumSpec::parse(yaml::parse(
        "declaration:\n  A: [K, M]\n  B: [K, N]\n  Z: [M, N]\n"
        "expressions:\n  - Z[m, n] = A[k, m] * B[k, n]\n"));
    auto tensors = spmspmTensors();

    // Space rank not in the loop order.
    {
        mapping::MappingSpec ms;
        mapping::EinsumMapping em;
        em.loopOrder = {"M", "N", "K"};
        em.space = {{"Q", false}};
        em.time = {{"M", false}, {"N", false}, {"K", false}};
        ms.setEinsum("Z", em);
        EXPECT_THROW(buildPlan(es.expressions[0], es, ms, tensors, {}),
                     SpecError);
    }
    // Partitioned rank missing from the loop order.
    {
        mapping::MappingSpec ms;
        mapping::EinsumMapping em;
        mapping::RankPartitioning rp;
        rp.sourceRanks = {"K"};
        rp.directives = {mapping::PartitionDirective::parse(
            "uniform_occupancy(A.8)", {})};
        em.partitioning.push_back(rp);
        em.loopOrder = {"M", "N", "K0"}; // K1 missing
        ms.setEinsum("Z", em);
        EXPECT_THROW(buildPlan(es.expressions[0], es, ms, tensors, {}),
                     SpecError);
    }
    // Tensor without data.
    {
        std::map<std::string, ft::Tensor> missing;
        missing.emplace("A", tensors.at("A").clone());
        EXPECT_THROW(
            buildPlan(es.expressions[0], es, {}, missing, {}),
            SpecError);
    }
}

TEST(IrBuilder, PlanToStringMentionsEverything)
{
    const auto es = EinsumSpec::parse(yaml::parse(
        "declaration:\n  A: [K, M]\n  B: [K, N]\n  Z: [M, N]\n"
        "expressions:\n  - Z[m, n] = A[k, m] * B[k, n]\n"));
    const auto plan =
        buildPlan(es.expressions[0], es, {}, spmspmTensors(), {});
    const std::string text = plan.toString();
    EXPECT_NE(text.find("Z[m,n]"), std::string::npos);
    EXPECT_NE(text.find("loops: M N K"), std::string::npos);
    EXPECT_NE(text.find("output Z"), std::string::npos);
}

TEST(IrBuilder, SigmaFlattenOfDerivedRank)
{
    // SIGMA flattens (M, K0) where K0 came from an earlier shape
    // split — the derived-rank chain of Figure 8c.
    const auto es = EinsumSpec::parse(yaml::parse(
        "declaration:\n  T: [K, M]\n  B: [K, N]\n  Z: [M, N]\n"
        "expressions:\n  - Z[m, n] = T[k, m] * B[k, n]\n"));
    const auto ms = MappingSpec::parse(yaml::parse(
        "partitioning:\n"
        "  Z:\n"
        "    K: [uniform_shape(8)]\n"
        "    (M, K0): [flatten()]\n"
        "    MK0: [uniform_occupancy(T.16)]\n"
        "loop-order:\n  Z: [K1, MK01, MK00, N]\n"
        "spacetime:\n  Z:\n    space: [MK00]\n"
        "    time: [K1, MK01, N.coord]\n"));
    std::map<std::string, ft::Tensor> tensors;
    tensors.emplace("T", workloads::uniformMatrix("T", 32, 24, 150, 3,
                                                  {"K", "M"}));
    tensors.emplace("B", workloads::uniformMatrix("B", 32, 28, 150, 4,
                                                  {"K", "N"}));
    const auto plan =
        buildPlan(es.expressions[0], es, ms, tensors, {});
    // The leader T materializes [K1, MK01, MK00].
    EXPECT_EQ(plan.inputs[0].prepared.rankIds(),
              (std::vector<std::string>{"K1", "MK01", "MK00"}));
    // MK00 binds m and k (the base variable of the derived K0).
    const LoopRank& mk00 = plan.loops[2];
    ASSERT_EQ(mk00.bindsVars.size(), 2u);
    EXPECT_EQ(mk00.bindsVars[0], "m");
    EXPECT_EQ(mk00.bindsVars[1], "k");
    EXPECT_TRUE(mk00.isSpace);
    // N time entry keeps its .coord tag.
    EXPECT_TRUE(plan.loops[3].coordSpace ||
                !plan.loops[3].isSpace); // tag recorded on entry
}

/// Mapped execution equals unmapped execution for random mappings of
/// the same Einsum: shape partitioning with random tile sizes.
class RandomShapeMapping : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomShapeMapping, TilingNeverChangesResults)
{
    Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 77);
    const auto es = EinsumSpec::parse(yaml::parse(
        "declaration:\n  A: [K, M]\n  B: [K, N]\n  Z: [M, N]\n"
        "expressions:\n  - Z[m, n] = A[k, m] * B[k, n]\n"));
    auto tensors = spmspmTensors(40, 30, 35);

    // Random tile sizes for K and M.
    const long tk = 2 + static_cast<long>(rng.below(12));
    const long tm = 2 + static_cast<long>(rng.below(12));
    mapping::MappingSpec ms;
    mapping::EinsumMapping em;
    {
        mapping::RankPartitioning k;
        k.sourceRanks = {"K"};
        k.directives = {mapping::PartitionDirective::parse(
            "uniform_shape(" + std::to_string(tk) + ")", {})};
        mapping::RankPartitioning m;
        m.sourceRanks = {"M"};
        m.directives = {mapping::PartitionDirective::parse(
            "uniform_shape(" + std::to_string(tm) + ")", {})};
        em.partitioning = {k, m};
        em.loopOrder = {"M1", "K1", "M0", "N", "K0"};
    }
    ms.setEinsum("Z", em);

    teaal::trace::Observer obs;
    const auto mapped_plan =
        buildPlan(es.expressions[0], es, ms, tensors, {});
    teaal::exec::Executor mapped(mapped_plan, obs);
    const ft::Tensor mz = mapped.run();

    const auto plain_plan =
        buildPlan(es.expressions[0], es, {}, tensors, {});
    teaal::exec::Executor plain(plain_plan, obs);
    const ft::Tensor pz = plain.run();

    EXPECT_TRUE(mz.equals(pz, 1e-9)) << "tiles " << tk << "x" << tm;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomShapeMapping,
                         ::testing::Range(0, 10));

} // namespace
} // namespace teaal::ir
