/**
 * @file
 * Tests of parallel sharded execution (RunOptions::threads): the
 * thread-count equivalence guarantee (identical counters, output
 * tensors, and delivered trace streams — including batch boundaries —
 * for every thread count, per Table 1 accelerator spec), reduction
 * and inner-rank sharding (contraction-outermost SIGMA, scalar-output
 * cascades, no-space-rank mappings — all shardable since PR 6), the
 * shard-plan classification, the disjoint and reducing fiber merges,
 * concurrent CompiledModel::run from multiple host threads, and the
 * unknown-rank diagnostic for co-iteration overrides.
 */
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "accelerators/accelerators.hpp"
#include "compiler/pipeline.hpp"
#include "fibertree/fiber.hpp"
#include "ir/plan.hpp"
#include "storage/packed.hpp"
#include "util/diagnostic.hpp"
#include "workloads/datasets.hpp"

namespace teaal
{
namespace
{

using compiler::CompiledModel;
using compiler::RunOptions;
using compiler::SimulationResult;
using compiler::Workload;

accel::GammaConfig
smallGamma()
{
    accel::GammaConfig cfg;
    cfg.pes = 4;
    cfg.rowChunk = 4;
    cfg.kChunk = 8;
    cfg.fiberCacheBytes = 64 * 1024;
    return cfg;
}

accel::ExTensorConfig
smallExTensor()
{
    accel::ExTensorConfig cfg;
    cfg.pes = 4;
    cfg.tileK1 = 16;
    cfg.tileK0 = 4;
    cfg.tileM1 = 16;
    cfg.tileM0 = 4;
    cfg.tileN1 = 16;
    cfg.tileN0 = 4;
    cfg.llcBytes = 256 * 1024;
    return cfg;
}

accel::OuterSpaceConfig
smallOuterSpace()
{
    accel::OuterSpaceConfig cfg;
    cfg.chunkOuter = 32;
    cfg.chunkInner = 8;
    cfg.mergeChunkOuter = 16;
    cfg.mergeChunkInner = 4;
    return cfg;
}

accel::SigmaConfig
smallSigma()
{
    accel::SigmaConfig cfg;
    cfg.kTile = 16;
    cfg.stationaryChunk = 64;
    return cfg;
}

struct TestMatrices
{
    ft::Tensor a;
    ft::Tensor b;
};

TestMatrices
makeMatrices(std::uint64_t seed)
{
    return {workloads::uniformMatrix("A", 40, 32, 300, seed, {"K", "M"}),
            workloads::uniformMatrix("B", 40, 36, 300, seed + 1,
                                     {"K", "N"})};
}

/**
 * Sparse matrix with small *integer* values: sums of products of
 * these are exact in double no matter how a reduction-sharded merge
 * groups the partial sums, so reduce-mode tests can assert exact
 * tensor equality across thread counts.
 */
ft::Tensor
intMatrix(std::string name, ft::Coord rows, ft::Coord cols,
          std::size_t nnz, std::uint64_t seed,
          std::vector<std::string> rank_ids)
{
    std::vector<std::pair<std::vector<ft::Coord>, ft::Value>> elems;
    std::set<std::pair<ft::Coord, ft::Coord>> used;
    std::uint64_t s = seed;
    auto next = [&s] {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        return s >> 33;
    };
    while (elems.size() < nnz) {
        const ft::Coord r = static_cast<ft::Coord>(next() % rows);
        const ft::Coord c = static_cast<ft::Coord>(next() % cols);
        if (!used.insert({r, c}).second)
            continue;
        elems.push_back(
            {{r, c}, static_cast<ft::Value>(1 + next() % 7)});
    }
    return ft::Tensor::fromCoo(std::move(name), rank_ids,
                               {rows, cols}, elems);
}

/**
 * Records the full delivered trace — every batch boundary and every
 * replayed per-event callback — as a flat string log, so two runs can
 * be compared for byte-identical streams.
 */
class StreamRecorder : public trace::Observer
{
  public:
    std::vector<std::string> log;

    void
    onEventBatch(const trace::EventBatch& batch) override
    {
        log.push_back("batch:" + std::to_string(batch.size()));
        trace::Observer::onEventBatch(batch); // replay per-event below
    }

    void
    onLoopEnter(std::size_t loop, ft::Coord c) override
    {
        add("L", loop, c);
    }
    void
    onCoIterate(std::size_t loop, std::size_t steps, std::size_t matches,
                std::size_t drivers, std::uint64_t pe) override
    {
        add("I", loop, steps, matches, drivers, pe);
    }
    void
    onCoordScan(int input, std::size_t level, std::size_t count,
                std::uint64_t pe) override
    {
        add("S", input, level, count, pe);
    }
    void
    onTensorAccess(int input, const std::string& tensor,
                   std::size_t level, ft::Coord c, const void* key,
                   const ft::Payload* payload, std::uint64_t pe) override
    {
        (void)key;
        (void)payload;
        add("A", input, level, c, pe);
        log.back() += ":" + tensor;
    }
    void
    onOutputWrite(const std::string& tensor, std::size_t level,
                  ft::Coord c, std::uint64_t path_key, bool inserted,
                  bool at_leaf, std::uint64_t pe) override
    {
        add("W", level, c, path_key, inserted, at_leaf, pe);
        log.back() += ":" + tensor;
    }
    void
    onCompute(char op, std::uint64_t pe, std::size_t count) override
    {
        add("C", op, pe, count);
    }
    void
    onSwizzle(const std::string& tensor, std::size_t elements,
              std::size_t ways, bool online) override
    {
        add("Z", elements, ways, online);
        log.back() += ":" + tensor;
    }
    void
    onTensorCopy(const std::string& from, const std::string& to,
                 std::size_t elements) override
    {
        add("Y", elements);
        log.back() += ":" + from + ">" + to;
    }

  private:
    template <typename... Args>
    void
    add(const char* tag, Args... args)
    {
        std::ostringstream os;
        os << tag;
        ((os << ':' << args), ...);
        log.push_back(os.str());
    }
};

void
expectSameResults(const SimulationResult& x, const SimulationResult& y)
{
    ASSERT_EQ(x.records.size(), y.records.size());
    for (std::size_t i = 0; i < x.records.size(); ++i) {
        EXPECT_TRUE(x.records[i].execStats == y.records[i].execStats)
            << "einsum " << i;
        EXPECT_EQ(x.records[i].traceEvents, y.records[i].traceEvents)
            << "einsum " << i;
        EXPECT_EQ(x.records[i].traceBatches, y.records[i].traceBatches)
            << "einsum " << i;
        ASSERT_EQ(x.records[i].traffic.size(),
                  y.records[i].traffic.size());
        for (const auto& [tensor, tt] : x.records[i].traffic) {
            const auto it = y.records[i].traffic.find(tensor);
            ASSERT_NE(it, y.records[i].traffic.end()) << tensor;
            EXPECT_DOUBLE_EQ(tt.readBytes, it->second.readBytes);
            EXPECT_DOUBLE_EQ(tt.writeBytes, it->second.writeBytes);
            EXPECT_DOUBLE_EQ(tt.poBytes, it->second.poBytes);
        }
    }
    EXPECT_DOUBLE_EQ(x.perf.totalSeconds, y.perf.totalSeconds);
    EXPECT_DOUBLE_EQ(x.energy.totalJoules, y.energy.totalJoules);
    ASSERT_EQ(x.tensors.size(), y.tensors.size());
    for (const auto& [name, t] : x.tensors) {
        const auto it = y.tensors.find(name);
        ASSERT_NE(it, y.tensors.end()) << name;
        EXPECT_TRUE(t.equals(it->second)) << name;
    }
}

/** Run the same workload at two thread counts; everything — counters,
 *  tensors, the delivered trace stream with its batch boundaries —
 *  must be byte-identical. */
void
expectThreadEquivalenceOn(CompiledModel& model, const Workload& w,
                          unsigned t_low, unsigned t_high)
{
    StreamRecorder rec_low;
    RunOptions low;
    low.threads = t_low;
    low.observers.push_back(&rec_low);
    const SimulationResult r_low = model.run(w, low);

    StreamRecorder rec_high;
    RunOptions high;
    high.threads = t_high;
    high.observers.push_back(&rec_high);
    const SimulationResult r_high = model.run(w, high);

    expectSameResults(r_low, r_high);
    ASSERT_EQ(rec_low.log.size(), rec_high.log.size());
    for (std::size_t i = 0; i < rec_low.log.size(); ++i) {
        ASSERT_EQ(rec_low.log[i], rec_high.log[i])
            << "stream diverges at event " << i;
    }
}

void
expectThreadEquivalence(compiler::Specification spec, unsigned t_low,
                        unsigned t_high)
{
    const auto mats = makeMatrices(23);
    auto model = compiler::compile(std::move(spec));
    Workload w;
    w.add("A", mats.a).add("B", mats.b);
    expectThreadEquivalenceOn(model, w, t_low, t_high);
}

/** A two-Einsum cascade ending in a scalar output: the matmul shards
 *  disjoint; Z[] = T[m, n] * W[m, n] has no space rank and a scalar
 *  output — the degenerate reduction where every shard writes the
 *  single output point. */
const char* kScalarCascadeYaml = R"(
einsum:
  declaration:
    A: [K, M]
    B: [K, N]
    W: [M, N]
    T: [M, N]
    Z: []
  expressions:
    - T[m, n] = A[k, m] * B[k, n]
    - Z[] = T[m, n] * W[m, n]
)";

// ------------------------------------------------- thread equivalence

TEST(Parallel, GammaThreads1Vs4)
{
    expectThreadEquivalence(accel::gamma(smallGamma()), 1, 4);
}

TEST(Parallel, GammaThreads2Vs4)
{
    expectThreadEquivalence(accel::gamma(smallGamma()), 2, 4);
}

TEST(Parallel, ExTensorThreads1Vs4)
{
    expectThreadEquivalence(accel::extensor(smallExTensor()), 1, 4);
}

TEST(Parallel, OuterSpaceThreads1Vs4)
{
    expectThreadEquivalence(accel::outerSpace(smallOuterSpace()), 1, 4);
}

/** SIGMA's Z nest is contraction-outermost (K1): since PR 6 it shards
 *  with private partial outputs and a semiring-add merge (and at this
 *  thin K1 geometry, inner-rank sharding below the top tile loop).
 *  Counters and streams must stay byte-identical at threads=4. */
TEST(Parallel, SigmaReductionShardingThreads1Vs4)
{
    expectThreadEquivalence(accel::sigma(smallSigma()), 1, 4);
}

/** SIGMA with exact tensor equality: integer values make every
 *  partial-sum grouping exact, so the reduce merge must reproduce
 *  the serial tensor bit-for-bit at 1/2/4 threads, pointer and
 *  packed backends alike. */
TEST(Parallel, SigmaIntegerExactThreads124PointerAndPacked)
{
    const ft::Tensor a = intMatrix("A", 40, 32, 300, 23, {"K", "M"});
    const ft::Tensor b = intMatrix("B", 40, 36, 300, 29, {"K", "N"});

    auto model = compiler::compile(accel::sigma(smallSigma()));
    Workload w;
    w.add("A", a).add("B", b);
    expectThreadEquivalenceOn(model, w, 1, 2);
    expectThreadEquivalenceOn(model, w, 1, 4);

    auto packed_model = compiler::compile(accel::sigma(smallSigma()));
    const auto pa = storage::PackedTensor::fromTensor(
        a, packed_model.spec().formats.getLenient("A"));
    const auto pb = storage::PackedTensor::fromTensor(
        b, packed_model.spec().formats.getLenient("B"));
    Workload pw;
    pw.add("A", pa).add("B", pb);
    expectThreadEquivalenceOn(packed_model, pw, 1, 2);
    expectThreadEquivalenceOn(packed_model, pw, 1, 4);
}

/** Scalar-output cascade: the final Einsum reduces everything into
 *  Z[] — the degenerate reduction where every shard writes the same
 *  output point. Exact at 1/2/4 threads, pointer and packed. */
TEST(Parallel, ScalarCascadeThreads124PointerAndPacked)
{
    const ft::Tensor a = intMatrix("A", 40, 32, 300, 31, {"K", "M"});
    const ft::Tensor b = intMatrix("B", 40, 36, 300, 37, {"K", "N"});
    const ft::Tensor wt = intMatrix("W", 32, 36, 400, 41, {"M", "N"});

    auto model = compiler::compile(
        compiler::Specification::parse(kScalarCascadeYaml));
    ASSERT_EQ(model.shardPlans().size(), 2u);
    EXPECT_TRUE(model.shardPlans()[1].shardable);
    EXPECT_TRUE(model.shardPlans()[1].reduceMerge);
    Workload w;
    w.add("A", a).add("B", b).add("W", wt);
    expectThreadEquivalenceOn(model, w, 1, 2);
    expectThreadEquivalenceOn(model, w, 1, 4);

    auto packed_model = compiler::compile(
        compiler::Specification::parse(kScalarCascadeYaml));
    const auto pa = storage::PackedTensor::fromTensor(
        a, packed_model.spec().formats.getLenient("A"));
    const auto pb = storage::PackedTensor::fromTensor(
        b, packed_model.spec().formats.getLenient("B"));
    const auto pwt = storage::PackedTensor::fromTensor(
        wt, packed_model.spec().formats.getLenient("W"));
    Workload pw;
    pw.add("A", pa).add("B", pb).add("W", pwt);
    expectThreadEquivalenceOn(packed_model, pw, 1, 2);
    expectThreadEquivalenceOn(packed_model, pw, 1, 4);
}

/** A mapping with no spacetime section at all still shards: the top
 *  rank M binds only output variables, so the walk splits disjoint —
 *  declared spatial parallelism is no longer a prerequisite. */
TEST(Parallel, NoSpaceRankShardsDisjoint)
{
    const char* yaml = R"(
einsum:
  declaration:
    A: [K, M]
    B: [K, N]
    Z: [M, N]
  expressions:
    - Z[m, n] = A[k, m] * B[k, n]
mapping:
  rank-order:
    A: [M, K]
    B: [K, N]
    Z: [M, N]
  loop-order:
    Z: [M, K, N]
)";
    auto model =
        compiler::compile(compiler::Specification::parse(yaml));
    ASSERT_EQ(model.shardPlans().size(), 1u);
    EXPECT_TRUE(model.shardPlans()[0].shardable);
    EXPECT_EQ(model.shardPlans()[0].mode,
              ir::ShardPlan::Mode::Disjoint);
    EXPECT_EQ(model.shardPlans()[0].rank, "M");
    EXPECT_TRUE(model.shardPlans()[0].spaceRank.empty());

    const auto mats = makeMatrices(5);
    Workload w;
    w.add("A", mats.a).add("B", mats.b);
    RunOptions serial;
    RunOptions wide;
    wide.threads = 4;
    expectSameResults(model.run(w, serial), model.run(w, wide));
}

// -------------------------------------------------------- shard plans

TEST(Parallel, ShardPlansPrecomputedAtCompile)
{
    auto gamma = compiler::compile(accel::gamma(smallGamma()));
    ASSERT_EQ(gamma.shardPlans().size(), 2u);
    for (const ir::ShardPlan& sp : gamma.shardPlans()) {
        EXPECT_TRUE(sp.shardable) << sp.reason;
        EXPECT_EQ(sp.mode, ir::ShardPlan::Mode::Disjoint);
        EXPECT_EQ(sp.rank, "M1");
        EXPECT_EQ(sp.spaceRank, "M0");
    }

    // SIGMA: the take Einsums shard disjoint along K; Z's outermost
    // rank K1 restricts the contraction variable k, so it shards with
    // the reduce merge. (The instantiated plan may still fall through
    // to inner-rank sharding when K1 is too thin — see
    // SigmaReductionShardingThreads1Vs4.)
    auto sigma = compiler::compile(accel::sigma(smallSigma()));
    ASSERT_EQ(sigma.shardPlans().size(), 3u);
    for (const ir::ShardPlan& sp : sigma.shardPlans())
        EXPECT_TRUE(sp.shardable) << sp.reason;
    EXPECT_EQ(sigma.shardPlans()[0].mode,
              ir::ShardPlan::Mode::Disjoint);
    EXPECT_EQ(sigma.shardPlans()[1].mode,
              ir::ShardPlan::Mode::Disjoint);
    EXPECT_EQ(sigma.shardPlans()[2].mode, ir::ShardPlan::Mode::Reduce);
    EXPECT_TRUE(sigma.shardPlans()[2].reduceMerge);
    EXPECT_EQ(sigma.shardPlans()[2].rank, "K1");

    // The report names each Einsum's parallelization.
    const std::string report = sigma.shardingReport();
    EXPECT_NE(report.find("Z: reduction sharding along rank 'K1'"),
              std::string::npos)
        << report;

    // A remaining refusal: a unary full reduction lowers to the
    // whole-tensor-copy path, which bypasses the loop nest — nothing
    // to shard. The report says so.
    auto copy = compiler::compile(
        compiler::Specification::parse(R"(
einsum:
  declaration:
    T: [M, N]
    Z: []
  expressions:
    - Z[] = T[m, n]
)"));
    ASSERT_EQ(copy.shardPlans().size(), 1u);
    EXPECT_FALSE(copy.shardPlans()[0].shardable);
    EXPECT_NE(copy.shardingReport().find("serial ("),
              std::string::npos);
}

// ------------------------------------------------- unknown overrides

TEST(Parallel, UnknownCoiterOverrideRankIsDiagnosed)
{
    const auto mats = makeMatrices(7);
    auto model = compiler::compile(accel::gamma(smallGamma()));
    Workload w;
    w.add("A", mats.a).add("B", mats.b);
    RunOptions opts;
    opts.coiterOverrides["QQ"] = ir::CoiterStrategy::Gallop;
    try {
        model.run(w, opts);
        FAIL() << "expected DiagnosticError";
    } catch (const DiagnosticError& e) {
        EXPECT_EQ(e.diagnostic().section, "exec");
        EXPECT_EQ(e.diagnostic().key, "QQ");
        EXPECT_NE(e.diagnostic().message.find("QQ"),
                  std::string::npos);
    }
    // Valid ranks must keep working after per-Einsum slicing.
    RunOptions valid;
    valid.coiterOverrides["K0"] = ir::CoiterStrategy::TwoFinger;
    EXPECT_NO_THROW(model.run(w, valid));
}

TEST(Parallel, EngineRejectsUnknownOverrideRank)
{
    const auto mats = makeMatrices(9);
    auto model = compiler::compile(accel::gamma(smallGamma()));
    Workload w;
    w.add("A", mats.a).add("B", mats.b);
    const auto& plans = model.plans(w);
    ASSERT_FALSE(plans.empty());
    trace::Observer obs;
    exec::ExecOptions eo;
    eo.coiterOverrides["NOPE"] = ir::CoiterStrategy::DenseDrive;
    EXPECT_THROW(
        exec::Executor(plans[0], obs, exec::Semiring::arithmetic(), eo),
        DiagnosticError);
}

// ------------------------------------------------------- fiber merge

TEST(Parallel, AbsorbDisjointAppendFastPath)
{
    ft::Fiber a(100);
    a.append(1, ft::Payload(1.0));
    a.append(5, ft::Payload(2.0));
    ft::Fiber b(100);
    b.append(7, ft::Payload(3.0));
    b.append(9, ft::Payload(4.0));
    a.absorbDisjoint(std::move(b));
    ASSERT_EQ(a.size(), 4u);
    EXPECT_EQ(a.coordAt(2), 7);
    EXPECT_DOUBLE_EQ(a.payloadAt(3).value(), 4.0);
}

TEST(Parallel, AbsorbDisjointInterleavedAndRecursive)
{
    auto child = [](ft::Coord c, double v) {
        auto f = std::make_shared<ft::Fiber>(ft::Coord{10});
        f->append(c, ft::Payload(v));
        return f;
    };
    ft::Fiber a(100);
    a.append(2, ft::Payload(child(1, 1.0)));
    a.append(8, ft::Payload(child(2, 2.0)));
    ft::Fiber b(100);
    b.append(2, ft::Payload(child(5, 5.0))); // collides: recurse
    b.append(4, ft::Payload(child(3, 3.0)));
    a.absorbDisjoint(std::move(b));
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(a.coordAt(0), 2);
    EXPECT_EQ(a.coordAt(1), 4);
    EXPECT_EQ(a.coordAt(2), 8);
    // The colliding subfibers merged: {1, 5} under coordinate 2.
    ASSERT_EQ(a.payloadAt(0).fiber()->size(), 2u);
    EXPECT_DOUBLE_EQ(a.payloadAt(0).fiber()->payloadAt(1).value(), 5.0);
}

TEST(Parallel, AbsorbDisjointLeafCollisionIsAnError)
{
    ft::Fiber a(10);
    a.append(3, ft::Payload(1.0));
    ft::Fiber b(10);
    b.append(3, ft::Payload(2.0));
    EXPECT_THROW(a.absorbDisjoint(std::move(b)), ModelError);
}

/** The disjoint merge's collision error names the Einsum and rank it
 *  happened on when given context. */
TEST(Parallel, AbsorbDisjointErrorNamesEinsumAndRank)
{
    ft::Fiber a(10);
    a.append(3, ft::Payload(1.0));
    ft::Fiber b(10);
    b.append(3, ft::Payload(2.0));
    ft::AbsorbContext ctx;
    ctx.einsum = "Z";
    ctx.rankIds = {"N"};
    try {
        a.absorbDisjoint(std::move(b), &ctx);
        FAIL() << "expected ModelError";
    } catch (const ModelError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("'N'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("'Z'"), std::string::npos) << msg;
    }
}

static double
addOp(double x, double y)
{
    return x + y;
}

TEST(Parallel, AbsorbReduceSumsLeafCollisions)
{
    ft::Fiber a(10);
    a.append(1, ft::Payload(1.0));
    a.append(3, ft::Payload(2.0));
    ft::Fiber b(10);
    b.append(3, ft::Payload(5.0)); // collides: summed
    b.append(7, ft::Payload(4.0));
    a.absorbReduce(std::move(b), addOp);
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(a.coordAt(0), 1);
    EXPECT_EQ(a.coordAt(1), 3);
    EXPECT_EQ(a.coordAt(2), 7);
    EXPECT_DOUBLE_EQ(a.payloadAt(1).value(), 7.0);
}

TEST(Parallel, AbsorbReduceRecursesIntoSubfibers)
{
    auto child = [](ft::Coord c, double v) {
        auto f = std::make_shared<ft::Fiber>(ft::Coord{10});
        f->append(c, ft::Payload(v));
        return f;
    };
    ft::Fiber a(100);
    a.append(2, ft::Payload(child(1, 1.0)));
    ft::Fiber b(100);
    b.append(2, ft::Payload(child(1, 4.0))); // leaf collision below
    b.append(5, ft::Payload(child(3, 3.0)));
    a.absorbReduce(std::move(b), addOp);
    ASSERT_EQ(a.size(), 2u);
    ASSERT_EQ(a.payloadAt(0).fiber()->size(), 1u);
    EXPECT_DOUBLE_EQ(a.payloadAt(0).fiber()->payloadAt(0).value(),
                     5.0);
    EXPECT_DOUBLE_EQ(a.payloadAt(1).fiber()->payloadAt(0).value(),
                     3.0);
}

TEST(Parallel, AbsorbReduceEmptySidesAndAppendFastPath)
{
    ft::Fiber a(10);
    ft::Fiber empty(10);
    a.absorbReduce(std::move(empty), addOp); // empty other: no-op
    EXPECT_EQ(a.size(), 0u);

    ft::Fiber b(10);
    b.append(4, ft::Payload(2.0));
    a.absorbReduce(std::move(b), addOp); // empty self: adopt
    ASSERT_EQ(a.size(), 1u);
    EXPECT_DOUBLE_EQ(a.payloadAt(0).value(), 2.0);

    ft::Fiber c(10);
    c.append(8, ft::Payload(3.0));
    a.absorbReduce(std::move(c), addOp); // strictly after: append
    ASSERT_EQ(a.size(), 2u);
    EXPECT_EQ(a.coordAt(1), 8);
}

/** Merging a scalar leaf against a subfiber at the same coordinate is
 *  a structural error, named with the rank when context is given. */
TEST(Parallel, AbsorbReduceRankMismatchIsAnError)
{
    ft::Fiber a(10);
    a.append(3, ft::Payload(1.0));
    ft::Fiber b(10);
    auto sub = std::make_shared<ft::Fiber>(ft::Coord{4});
    sub->append(0, ft::Payload(2.0));
    b.append(3, ft::Payload(sub));
    ft::AbsorbContext ctx;
    ctx.einsum = "Z";
    ctx.rankIds = {"M", "N"};
    EXPECT_THROW(a.absorbReduce(std::move(b), addOp, &ctx),
                 ModelError);
}

/** An observer throwing mid-run must surface as a catchable exception
 *  from run() at any thread count (workers are drained first), not a
 *  process abort. */
TEST(Parallel, ObserverExceptionPropagatesFromShardedRun)
{
    struct Thrower : trace::Observer
    {
        void
        onEventBatch(const trace::EventBatch&) override
        {
            throw std::runtime_error("observer boom");
        }
    };
    const auto mats = makeMatrices(31);
    auto model = compiler::compile(accel::gamma(smallGamma()));
    Workload w;
    w.add("A", mats.a).add("B", mats.b);
    for (const unsigned threads : {1u, 4u}) {
        Thrower thrower;
        RunOptions opts;
        opts.threads = threads;
        opts.cacheState = false;
        opts.observers.push_back(&thrower);
        EXPECT_THROW(model.run(w, opts), std::runtime_error)
            << "threads=" << threads;
    }
}

// ------------------------------------------------ concurrent run()

/** Concurrent CompiledModel::run from multiple host threads on
 *  distinct workloads, with a cache small enough to force eviction
 *  churn: the internally synchronized LRU must never corrupt state
 *  or results (run under TSan/ASan in debug builds). */
TEST(Parallel, ConcurrentRunsOnDistinctWorkloads)
{
    compiler::CompileOptions copts;
    copts.workloadCacheCapacity = 2; // force evictions
    auto model = compiler::compile(accel::gamma(smallGamma()), copts);

    constexpr int kThreads = 4;
    constexpr int kRounds = 3;
    std::vector<TestMatrices> mats;
    std::vector<SimulationResult> reference;
    for (int t = 0; t < kThreads; ++t) {
        mats.push_back(makeMatrices(100 + 10 * t));
        Workload w;
        w.add("A", mats.back().a).add("B", mats.back().b);
        reference.push_back(model.run(w));
    }
    model.clearCache();

    std::vector<SimulationResult> got(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Workload w;
            w.add("A", mats[static_cast<std::size_t>(t)].a)
                .add("B", mats[static_cast<std::size_t>(t)].b);
            RunOptions opts;
            // Half the host threads also shard internally, sharing
            // the model's worker pool.
            opts.threads = t % 2 == 0 ? 1 : 2;
            for (int round = 0; round < kRounds; ++round)
                got[static_cast<std::size_t>(t)] = model.run(w, opts);
        });
    }
    for (std::thread& t : threads)
        t.join();
    for (int t = 0; t < kThreads; ++t) {
        expectSameResults(reference[static_cast<std::size_t>(t)],
                          got[static_cast<std::size_t>(t)]);
    }
}

/**
 * Plan-cache LRU eviction under concurrent churn (deterministic, no
 * sleeps — run under TSan in CI): more live workloads than cache
 * capacity, every host thread cycling through all of them in a
 * different order, so entries are concurrently hit, missed, evicted,
 * and re-instantiated. Results must match the serial reference
 * exactly, counters must balance, and eviction must actually have
 * happened (the stress is vacuous otherwise).
 */
TEST(Parallel, PlanCacheEvictionStress)
{
    compiler::CompileOptions copts;
    copts.workloadCacheCapacity = 2;
    auto model = compiler::compile(accel::gamma(smallGamma()), copts);

    constexpr int kWorkloads = 5;
    constexpr int kThreads = 4;
    constexpr int kRounds = 4;
    std::vector<TestMatrices> mats;
    std::vector<Workload> workloads(kWorkloads);
    std::vector<SimulationResult> reference;
    for (int i = 0; i < kWorkloads; ++i)
        mats.push_back(makeMatrices(500 + 10 * i));
    for (int i = 0; i < kWorkloads; ++i) {
        // Workloads are shared across host threads (stable
        // fingerprints — a per-thread Workload would never share
        // cache entries), so borrow from the stable mats vector.
        workloads[static_cast<std::size_t>(i)]
            .add("A", mats[static_cast<std::size_t>(i)].a)
            .add("B", mats[static_cast<std::size_t>(i)].b);
        reference.push_back(model.run(
            workloads[static_cast<std::size_t>(i)]));
    }
    model.clearCache();
    // Counters survive clearCache (entries do not); assert on deltas.
    const compiler::PlanCacheStats before = model.planCacheStats();
    ASSERT_EQ(before.entries, 0u);

    std::vector<std::vector<SimulationResult>> got(
        kThreads, std::vector<SimulationResult>(kWorkloads));
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int round = 0; round < kRounds; ++round) {
                for (int i = 0; i < kWorkloads; ++i) {
                    // A different cycling order per thread maximizes
                    // LRU churn (thread t starts at workload t).
                    const int w = (i + t) % kWorkloads;
                    got[static_cast<std::size_t>(t)]
                       [static_cast<std::size_t>(w)] = model.run(
                           workloads[static_cast<std::size_t>(w)]);
                }
            }
        });
    }
    for (std::thread& th : threads)
        th.join();

    for (int t = 0; t < kThreads; ++t) {
        for (int i = 0; i < kWorkloads; ++i)
            expectSameResults(reference[static_cast<std::size_t>(i)],
                              got[static_cast<std::size_t>(t)]
                                 [static_cast<std::size_t>(i)]);
    }

    const compiler::PlanCacheStats stats = model.planCacheStats();
    const std::uint64_t total = kThreads * kRounds * kWorkloads;
    EXPECT_EQ((stats.hits - before.hits) +
                  (stats.misses - before.misses),
              total); // every run() is exactly one hit or one miss
    EXPECT_GT(stats.evictions,
              before.evictions); // capacity 2 < 5 live workloads
    EXPECT_LE(stats.entries, 2u);
    // Since clearCache, every miss instantiated a state and every
    // eviction retired one; whatever the interleaving, the ledger
    // balances to the live entry count.
    EXPECT_EQ(stats.misses - before.misses, stats.evictions -
                                                before.evictions +
                                                stats.entries);
}

} // namespace
} // namespace teaal
