/**
 * @file
 * Tests of the serving subsystem (src/serve/): the mini-JSON codec,
 * the byte-accounted LRU registry, admission control (structural
 * shedding, no timing assumptions), protocol-boundary validation
 * (malformed JSON, unknown ids, out-of-range thread counts — all
 * answered with structured errors, never a dropped connection), and
 * the end-to-end loopback round trip including graceful stop().
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "serve/admission.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "storage/packed.hpp"
#include "storage/store.hpp"
#include "util/thread_pool.hpp"
#include "workloads/datasets.hpp"
#include "workloads/mtx.hpp"

namespace teaal
{
namespace
{

using serve::Json;
using serve::parseJson;

// ------------------------------------------------------------- JSON

TEST(ServeJson, RoundTripsScalarsAndContainers)
{
    const Json v = parseJson(
        R"({"s":"hi","n":-2.5,"t":true,"f":false,"z":null,)"
        R"("a":[1,2,3],"o":{"k":"v"}})");
    EXPECT_EQ(v.find("s")->str(), "hi");
    EXPECT_DOUBLE_EQ(v.find("n")->number(), -2.5);
    EXPECT_TRUE(v.find("t")->boolean());
    EXPECT_FALSE(v.find("f")->boolean());
    EXPECT_TRUE(v.find("z")->isNull());
    EXPECT_EQ(v.find("a")->array().size(), 3u);
    EXPECT_EQ(v.find("o")->find("k")->str(), "v");
    // dump -> parse -> dump is a fixed point.
    const std::string once = v.dump();
    EXPECT_EQ(parseJson(once).dump(), once);
    EXPECT_EQ(once.find('\n'), std::string::npos);
}

TEST(ServeJson, EscapesAndUnicode)
{
    const Json v = parseJson(R"({"k":"a\"b\\c\n\tAé"})");
    EXPECT_EQ(v.find("k")->str(), "a\"b\\c\n\tA\xc3\xa9");
    // Control characters are re-escaped on dump.
    const std::string dumped = v.dump();
    EXPECT_NE(dumped.find("\\n"), std::string::npos);
    EXPECT_EQ(parseJson(dumped).find("k")->str(),
              v.find("k")->str());
}

TEST(ServeJson, IntegersDumpWithoutExponent)
{
    Json v = Json::makeObject();
    v.set("big", Json::makeNumber(123456789.0));
    EXPECT_NE(v.dump().find("123456789"), std::string::npos);
    EXPECT_EQ(v.dump().find("e+"), std::string::npos);
}

TEST(ServeJson, MalformedInputThrowsWithOffset)
{
    EXPECT_THROW(parseJson("{"), SpecError);
    EXPECT_THROW(parseJson("{\"a\":}"), SpecError);
    EXPECT_THROW(parseJson("[1,2,]"), SpecError);
    EXPECT_THROW(parseJson("tru"), SpecError);
    EXPECT_THROW(parseJson("{} trailing"), SpecError);
    EXPECT_THROW(parseJson("\"unterminated"), SpecError);
    try {
        parseJson("[1, x]");
        FAIL() << "expected SpecError";
    } catch (const SpecError& e) {
        EXPECT_NE(std::string(e.what()).find("offset"),
                  std::string::npos);
    }
}

TEST(ServeJson, TypeMismatchThrows)
{
    const Json v = parseJson(R"({"n":1})");
    EXPECT_THROW(v.find("n")->str(), SpecError);
    EXPECT_THROW(v.find("n")->array(), SpecError);
    EXPECT_EQ(v.find("missing"), nullptr);
}

// --------------------------------------------------------- Registry

std::shared_ptr<const storage::PackedTensor>
packedOfBytes(const std::string& name, std::size_t nnz)
{
    const ft::Tensor t = workloads::uniformMatrix(
        name, 64, 64, nnz, 42 + nnz, {"K", "M"});
    return std::make_shared<const storage::PackedTensor>(
        storage::PackedTensor::fromTensor(t));
}

TEST(ServeRegistry, EvictsColdEntriesPastBudget)
{
    auto d1 = packedOfBytes("A", 200);
    auto d2 = packedOfBytes("B", 200);
    auto d3 = packedOfBytes("C", 200);
    const std::uint64_t each = d1->residentBytes();

    // Budget fits two entries but not three.
    serve::Registry reg(2 * each + each / 2);
    const std::string i1 = reg.addDataset(d1);
    const std::string i2 = reg.addDataset(d2);
    EXPECT_NE(reg.dataset(i1), nullptr);
    EXPECT_NE(reg.dataset(i2), nullptr);

    // i1 was touched last, so inserting d3 evicts... i2? No: the LRU
    // order after the touches is [i2, i1] hot-to-cold reversed —
    // lookups above touched i1 *then* i2, so i1 is the cold one.
    std::vector<std::string> evicted;
    reg.setEvictionHook(
        [&](const std::string& id) { evicted.push_back(id); });
    const std::string i3 = reg.addDataset(d3);

    const serve::Registry::Stats stats = reg.stats();
    EXPECT_LE(stats.residentBytes, 2 * each + each / 2);
    EXPECT_EQ(stats.evictions, 1u);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0], i1);
    EXPECT_EQ(reg.dataset(i1), nullptr);
    EXPECT_TRUE(reg.evicted(i1));
    EXPECT_FALSE(reg.evicted("d999"));
    EXPECT_NE(reg.dataset(i3), nullptr);
}

TEST(ServeRegistry, LookupRefreshesLruOrder)
{
    auto d = packedOfBytes("A", 100);
    const std::uint64_t each = d->residentBytes();
    serve::Registry reg(2 * each + each / 2);
    const std::string i1 = reg.addDataset(d);
    const std::string i2 = reg.addDataset(packedOfBytes("B", 100));
    ASSERT_NE(reg.dataset(i1), nullptr); // i1 becomes hot
    reg.addDataset(packedOfBytes("C", 100));
    EXPECT_NE(reg.dataset(i1), nullptr); // survived
    EXPECT_EQ(reg.dataset(i2), nullptr); // i2 was the cold one
}

TEST(ServeRegistry, OversizedEntryAdmittedAlone)
{
    auto big = packedOfBytes("A", 400);
    serve::Registry reg(big->residentBytes() / 2); // budget too small
    const std::string i1 = reg.addDataset(packedOfBytes("B", 50));
    const std::string i2 = reg.addDataset(big);
    // The oversized entry is resident; everything else was evicted.
    EXPECT_NE(reg.dataset(i2), nullptr);
    EXPECT_EQ(reg.dataset(i1), nullptr);
    EXPECT_TRUE(reg.evicted(i1));
}

TEST(ServeRegistry, SharedPtrKeepsEvictedEntryAliveForInFlightUse)
{
    auto d1 = packedOfBytes("A", 200);
    serve::Registry reg(d1->residentBytes());
    const std::string i1 = reg.addDataset(d1);
    auto held = reg.dataset(i1); // an in-flight request's reference
    reg.addDataset(packedOfBytes("B", 200)); // evicts i1
    EXPECT_EQ(reg.dataset(i1), nullptr);
    ASSERT_NE(held, nullptr); // but the state is still alive
    EXPECT_GT(held->nnz(), 0u);
}

// -------------------------------------------------------- Admission

TEST(ServeAdmission, ShedsAtMaxInFlightStructurally)
{
    util::ThreadPool pool(4);
    serve::Admission admission(pool, /*max_in_flight=*/2);

    // Park two jobs on a latch: in-flight count is now structurally
    // pinned at the cap, no timing involved.
    std::mutex m;
    std::condition_variable cv;
    bool release = false;
    std::atomic<int> started{0};
    const auto parked = [&] {
        started.fetch_add(1);
        std::unique_lock<std::mutex> lk(m);
        cv.wait(lk, [&] { return release; });
    };
    ASSERT_EQ(admission.submit(parked), serve::Admission::Reject::None);
    ASSERT_EQ(admission.submit(parked), serve::Admission::Reject::None);

    // The cap counts accepted-but-unfinished work, so the third
    // submit sheds regardless of whether the two jobs started.
    EXPECT_EQ(admission.submit([] {}),
              serve::Admission::Reject::Overloaded);
    EXPECT_EQ(admission.stats().shed, 1u);
    EXPECT_EQ(admission.stats().inFlight, 2u);

    {
        std::lock_guard<std::mutex> lk(m);
        release = true;
    }
    cv.notify_all();
    admission.drain();

    const serve::Admission::Stats stats = admission.stats();
    EXPECT_EQ(stats.accepted, 2u);
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_EQ(stats.inFlight, 0u);
    EXPECT_EQ(stats.peakInFlight, 2u);

    // After close(), everything is shed as ShuttingDown.
    admission.close();
    EXPECT_EQ(admission.submit([] {}),
              serve::Admission::Reject::ShuttingDown);
    admission.reopen();
    EXPECT_EQ(admission.submit([] {}),
              serve::Admission::Reject::None);
    admission.drain();
}

// ------------------------------------------- protocol (socket-free)

/** Fixture with a non-listening server: handleLine() is the protocol
 *  core, identical to what sessions execute per received line. */
class ServeProtocol : public ::testing::Test
{
  protected:
    Json
    call(const std::string& line)
    {
        return parseJson(server_.handleLine(line));
    }

    static void
    expectError(const Json& r, const std::string& code,
                const std::string& key = "")
    {
        ASSERT_NE(r.find("ok"), nullptr) << r.dump();
        EXPECT_FALSE(r.find("ok")->boolean()) << r.dump();
        const Json* error = r.find("error");
        ASSERT_NE(error, nullptr);
        EXPECT_EQ(error->find("code")->str(), code) << r.dump();
        if (!key.empty())
            EXPECT_EQ(error->find("key")->str(), key) << r.dump();
        EXPECT_FALSE(error->find("message")->str().empty());
    }

    serve::Server server_;
};

TEST_F(ServeProtocol, MalformedJsonIsAStructuredError)
{
    expectError(call("{not json"), "bad_request", "json");
    expectError(call("[1,2"), "bad_request", "json");
}

TEST_F(ServeProtocol, NonObjectAndMissingOpAreRejected)
{
    expectError(call("[1,2,3]"), "bad_request");
    expectError(call("{}"), "bad_request", "op");
    expectError(call(R"({"op":7})"), "bad_request", "op");
    expectError(call(R"({"op":"frobnicate"})"), "bad_request", "op");
}

TEST_F(ServeProtocol, RequestIdIsEchoedEvenOnErrors)
{
    const Json r = call(R"({"op":"nope","id":42})");
    ASSERT_NE(r.find("id"), nullptr);
    EXPECT_DOUBLE_EQ(r.find("id")->number(), 42.0);
}

TEST_F(ServeProtocol, CompileValidatesItsArguments)
{
    expectError(call(R"({"op":"compile"})"), "bad_request", "spec");
    expectError(call(R"({"op":"compile","accel":"warp_drive"})"),
                "bad_request", "accel");
    expectError(
        call(R"({"op":"compile","spec":"x","params":{"K1":"a"}})"),
        "bad_request", "params");
    // A malformed spec surfaces the compiler's own diagnostic.
    expectError(call(R"({"op":"compile","spec":"junk: [\n"})"),
                "bad_request");
}

TEST_F(ServeProtocol, LoadDatasetValidatesItsArguments)
{
    expectError(call(R"({"op":"load_dataset"})"), "bad_request",
                "path");
    expectError(
        call(R"({"op":"load_dataset","path":"/nonexistent.mtx"})"),
        "bad_request", "path");
    expectError(call(R"({"op":"load_dataset","path":"x",)"
                     R"("rank_ids":"K"})"),
                "bad_request", "rank_ids");
}

/** Protocol matrix for mmap-backed packed stores (PR 10): valid
 *  stores load with `mapped:true` charged by file size and evaluate
 *  end-to-end; damaged stores answer structured "store" errors. */
class ServeProtocolStore : public ServeProtocol
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               "teaal_serve_store";
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
        aPath_ = (dir_ / "a.teaal").string();
        bPath_ = (dir_ / "b.teaal").string();
        storage::writeStore(
            aPath_, storage::PackedTensor::fromTensor(
                        workloads::uniformMatrix("A", 48, 40, 250, 7,
                                                 {"K", "M"})));
        storage::writeStore(
            bPath_, storage::PackedTensor::fromTensor(
                        workloads::uniformMatrix("B", 48, 44, 250, 8,
                                                 {"K", "N"})));
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    Json
    load(const std::string& path, const std::string& name)
    {
        return call(R"({"op":"load_dataset","path":")" + path +
                    R"(","name":")" + name + R"("})");
    }

    static void
    expectStoreError(const Json& r, const std::string& path)
    {
        expectError(r, "bad_request", path);
        EXPECT_EQ(r.find("error")->find("section")->str(), "store")
            << r.dump();
    }

    std::filesystem::path dir_;
    std::string aPath_, bPath_;
};

TEST_F(ServeProtocolStore, StoresLoadMappedAndEvaluate)
{
    const Json da = load(aPath_, "A");
    ASSERT_TRUE(da.find("ok")->boolean()) << da.dump();
    EXPECT_TRUE(da.find("mapped")->boolean()) << da.dump();
    EXPECT_DOUBLE_EQ(da.find("bytes")->number(),
                     static_cast<double>(
                         std::filesystem::file_size(aPath_)));
    const Json db = load(bPath_, "B");
    ASSERT_TRUE(db.find("ok")->boolean()) << db.dump();
    EXPECT_TRUE(db.find("mapped")->boolean());

    // Matrix Market loads still answer mapped:false.
    const std::string mtx = (dir_ / "a.mtx").string();
    workloads::writeMatrixMarket(
        mtx, workloads::uniformMatrix("A", 16, 16, 30, 9, {"K", "M"}));
    const Json dm = load(mtx, "A");
    ASSERT_TRUE(dm.find("ok")->boolean()) << dm.dump();
    EXPECT_FALSE(dm.find("mapped")->boolean());

    // The mapped datasets drive a full evaluation.
    const Json compiled = call(R"({"op":"compile","accel":"gamma"})");
    ASSERT_TRUE(compiled.find("ok")->boolean()) << compiled.dump();
    const Json r = call(
        R"({"op":"evaluate","model":")" +
        compiled.find("model")->str() + R"(","bindings":{"A":")" +
        da.find("dataset")->str() + R"(","B":")" +
        db.find("dataset")->str() + R"("}})");
    ASSERT_TRUE(r.find("ok")->boolean()) << r.dump();
    EXPECT_GT(r.find("compute_muls")->number(), 0.0);
}

TEST_F(ServeProtocolStore, DamagedStoresAnswerStructuredErrors)
{
    // Truncation: header promises more bytes than the file holds.
    const std::string trunc = (dir_ / "trunc.teaal").string();
    std::filesystem::copy_file(aPath_, trunc);
    std::filesystem::resize_file(
        trunc, std::filesystem::file_size(trunc) - 1);
    expectStoreError(load(trunc, "A"), trunc);

    // Bad magic after the sniff passes is impossible — a non-store
    // prefix routes to the Matrix Market parser — but a store whose
    // version this build does not read is a "store" error.
    const std::string vers = (dir_ / "vers.teaal").string();
    std::filesystem::copy_file(aPath_, vers);
    {
        std::fstream f(vers, std::ios::binary | std::ios::in |
                                 std::ios::out);
        f.seekp(8); // version field
        const char v = 9;
        f.write(&v, 1);
    }
    expectStoreError(load(vers, "A"), vers);

    // Name mismatch: the store holds "A", the request asks for "X".
    expectStoreError(load(aPath_, "X"), aPath_);

    // The registry took none of the failed loads.
    EXPECT_EQ(server_.registry().stats().datasets, 0u);
}

TEST_F(ServeProtocol, EvaluateValidatesItsArguments)
{
    expectError(call(R"({"op":"evaluate"})"), "bad_request", "model");
    expectError(call(R"({"op":"evaluate","model":"m1"})"),
                "bad_request", "bindings");
    expectError(
        call(R"({"op":"evaluate","model":"m9","bindings":{}})"),
        "unknown_id", "m9");

    const Json compiled = call(R"({"op":"compile","accel":"gamma"})");
    ASSERT_TRUE(compiled.find("ok")->boolean()) << compiled.dump();
    const std::string model = compiled.find("model")->str();
    const std::string prefix =
        R"({"op":"evaluate","model":")" + model + R"(",)";

    // Thread counts outside [1, maxEvalThreads] are protocol errors —
    // negative, zero, fractional, and huge alike.
    expectError(parseJson(server_.handleLine(
                    prefix + R"("bindings":{},"threads":-3})")),
                "bad_request", "threads");
    expectError(parseJson(server_.handleLine(
                    prefix + R"("bindings":{},"threads":0})")),
                "bad_request", "threads");
    expectError(parseJson(server_.handleLine(
                    prefix + R"("bindings":{},"threads":1.5})")),
                "bad_request", "threads");
    expectError(parseJson(server_.handleLine(
                    prefix + R"("bindings":{},"threads":4096})")),
                "bad_request", "threads");

    // Bindings must map tensor names to dataset-id strings, and the
    // ids must be registered.
    expectError(parseJson(server_.handleLine(
                    prefix + R"("bindings":{"A":7}})")),
                "bad_request", "A");
    expectError(parseJson(server_.handleLine(
                    prefix + R"("bindings":{"A":"d404"}})")),
                "unknown_id", "d404");
}

TEST_F(ServeProtocol, EstimateValidatesItsArguments)
{
    expectError(call(R"({"op":"estimate"})"), "bad_request", "model");
    expectError(call(R"({"op":"estimate","model":"m1"})"),
                "bad_request", "bindings");
    expectError(
        call(R"({"op":"estimate","model":"m9","bindings":7})"),
        "bad_request", "bindings");
    expectError(
        call(R"({"op":"estimate","model":"m9","bindings":{}})"),
        "unknown_id", "m9");

    const Json compiled = call(R"({"op":"compile","accel":"gamma"})");
    ASSERT_TRUE(compiled.find("ok")->boolean()) << compiled.dump();
    const std::string prefix = R"({"op":"estimate","model":")" +
                               compiled.find("model")->str() +
                               R"(",)";
    expectError(parseJson(server_.handleLine(
                    prefix + R"("bindings":{"A":7}})")),
                "bad_request", "A");
    expectError(parseJson(server_.handleLine(
                    prefix + R"("bindings":{"A":"d404"}})")),
                "unknown_id", "d404");
    // A resolvable but incomplete workload fails the model's own
    // validation, in the same structured shape.
    expectError(parseJson(
                    server_.handleLine(prefix + R"("bindings":{}})")),
                "bad_request");
}

TEST_F(ServeProtocol, DeadlineFieldIsValidated)
{
    // The field is validated before the model is even looked up, so a
    // bogus deadline on a bogus model still names the real problem.
    const std::string prefix =
        R"({"op":"evaluate","model":"m9","bindings":{},)";
    expectError(call(prefix + R"("deadline_ms":-5})"), "bad_request",
                "deadline_ms");
    expectError(call(prefix + R"("deadline_ms":0})"), "bad_request",
                "deadline_ms");
    expectError(call(prefix + R"("deadline_ms":"soon"})"),
                "bad_request", "deadline_ms");
}

TEST_F(ServeProtocol, CancelValidatesAndCountsMatches)
{
    expectError(call(R"({"op":"cancel"})"), "bad_request", "target");
    // A target with nothing in flight is an answer, not an error.
    const Json r = call(R"({"op":"cancel","target":"nobody"})");
    ASSERT_TRUE(r.find("ok")->boolean()) << r.dump();
    EXPECT_DOUBLE_EQ(r.find("cancelled")->number(), 0.0);
}

TEST_F(ServeProtocol, ShardingReportNeedsAKnownModel)
{
    expectError(call(R"({"op":"sharding_report","model":"m7"})"),
                "unknown_id", "m7");
    const Json compiled = call(R"({"op":"compile","accel":"gamma"})");
    const std::string model = compiled.find("model")->str();
    const Json report = parseJson(server_.handleLine(
        R"({"op":"sharding_report","model":")" + model + "\"}"));
    ASSERT_TRUE(report.find("ok")->boolean()) << report.dump();
    const auto& einsums = report.find("einsums")->array();
    ASSERT_FALSE(einsums.empty());
    for (const Json& entry : einsums) {
        EXPECT_FALSE(entry.find("einsum")->str().empty());
        const std::string mode = entry.find("mode")->str();
        EXPECT_TRUE(mode == "disjoint" || mode == "reduce" ||
                    mode == "inner" || mode == "serial")
            << mode;
    }
}

// ----------------------------------------------------- end to end

class ServeEndToEnd : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               "teaal_serve_test";
        std::filesystem::create_directories(dir_);
        aPath_ = (dir_ / "a.mtx").string();
        bPath_ = (dir_ / "b.mtx").string();
        workloads::writeMatrixMarket(
            aPath_, workloads::uniformMatrix("A", 48, 40, 250, 7,
                                             {"K", "M"}));
        workloads::writeMatrixMarket(
            bPath_, workloads::uniformMatrix("B", 48, 44, 250, 8,
                                             {"K", "N"}));
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    static std::string
    loadLine(const std::string& path, const std::string& name,
             const std::string& col)
    {
        return R"({"op":"load_dataset","path":")" + path +
               R"(","name":")" + name + R"(","rank_ids":["K",")" +
               col + R"("]})";
    }

    /** Registered big workload: the serial evaluate wall time is
     *  large enough to dominate cancel/deadline round trips. */
    struct BigWorkload
    {
        std::string model, da, db;
    };

    BigWorkload
    setUpBig(serve::Client& client)
    {
        const std::string cPath = (dir_ / "c.mtx").string();
        const std::string dPath = (dir_ / "d.mtx").string();
        workloads::writeMatrixMarket(
            cPath, workloads::uniformMatrix("A", 200, 200, 8000, 7,
                                            {"K", "M"}));
        workloads::writeMatrixMarket(
            dPath, workloads::uniformMatrix("B", 200, 200, 8000, 8,
                                            {"K", "N"}));
        BigWorkload w;
        const Json compiled = client.request(
            parseJson(R"({"op":"compile","accel":"gamma"})"));
        EXPECT_TRUE(compiled.find("ok")->boolean())
            << compiled.dump();
        w.model = compiled.find("model")->str();
        w.da = client.request(parseJson(loadLine(cPath, "A", "M")))
                   .find("dataset")
                   ->str();
        w.db = client.request(parseJson(loadLine(dPath, "B", "N")))
                   .find("dataset")
                   ->str();
        return w;
    }

    /** Evaluate request over a big workload; `extra` appends raw
     *  JSON fields, e.g. ",\"threads\":1,\"deadline_ms\":40". */
    static std::string
    evalLine(const BigWorkload& w, const std::string& extra)
    {
        return R"({"op":"evaluate","model":")" + w.model +
               R"(","bindings":{"A":")" + w.da + R"(","B":")" +
               w.db + R"("})" + extra + "}";
    }

    static void
    expectCancelled(const Json& r, const std::string& code,
                    const std::string& reason)
    {
        ASSERT_NE(r.find("ok"), nullptr) << r.dump();
        EXPECT_FALSE(r.find("ok")->boolean()) << r.dump();
        const Json* error = r.find("error");
        ASSERT_NE(error, nullptr) << r.dump();
        EXPECT_EQ(error->find("code")->str(), code) << r.dump();
        ASSERT_NE(r.find("reason"), nullptr) << r.dump();
        EXPECT_EQ(r.find("reason")->str(), reason) << r.dump();
        ASSERT_NE(r.find("elapsed_ms"), nullptr) << r.dump();
        EXPECT_GE(r.find("elapsed_ms")->number(), 0.0);
    }

    std::filesystem::path dir_;
    std::string aPath_, bPath_;
};

TEST_F(ServeEndToEnd, LoopbackRoundTripWithPlanCacheReuse)
{
    serve::Server server;
    server.start();
    ASSERT_GT(server.port(), 0);
    ASSERT_TRUE(server.running());

    serve::Client client;
    client.connect(server.port());

    const Json compiled = client.request(
        parseJson(R"({"op":"compile","accel":"gamma","id":"c1"})"));
    ASSERT_TRUE(compiled.find("ok")->boolean()) << compiled.dump();
    EXPECT_EQ(compiled.find("id")->str(), "c1");
    const std::string model = compiled.find("model")->str();

    const Json da =
        client.request(parseJson(loadLine(aPath_, "A", "M")));
    ASSERT_TRUE(da.find("ok")->boolean()) << da.dump();
    EXPECT_GT(da.find("bytes")->number(), 0.0);
    const Json db =
        client.request(parseJson(loadLine(bPath_, "B", "N")));
    ASSERT_TRUE(db.find("ok")->boolean()) << db.dump();

    const std::string evaluate =
        R"({"op":"evaluate","model":")" + model +
        R"(","bindings":{"A":")" + da.find("dataset")->str() +
        R"(","B":")" + db.find("dataset")->str() +
        R"("},"threads":1})";

    const Json first = parseJson(client.requestLine(evaluate));
    ASSERT_TRUE(first.find("ok")->boolean()) << first.dump();
    EXPECT_EQ(first.find("cache")->str(), "miss");
    EXPECT_GT(first.find("exec_seconds")->number(), 0.0);
    EXPECT_GT(first.find("traffic_bytes")->number(), 0.0);
    EXPECT_GT(first.find("compute_muls")->number(), 0.0);
    // Every evaluate response reports its server-side wall time.
    ASSERT_NE(first.find("elapsed_ms"), nullptr) << first.dump();
    EXPECT_GE(first.find("elapsed_ms")->number(), 0.0);

    const Json second = parseJson(client.requestLine(evaluate));
    ASSERT_TRUE(second.find("ok")->boolean()) << second.dump();
    EXPECT_EQ(second.find("cache")->str(), "hit");
    // Determinism: identical counters on the cached plan.
    EXPECT_DOUBLE_EQ(second.find("exec_seconds")->number(),
                     first.find("exec_seconds")->number());
    EXPECT_DOUBLE_EQ(second.find("traffic_bytes")->number(),
                     first.find("traffic_bytes")->number());

    const Json stats =
        client.request(parseJson(R"({"op":"stats"})"));
    ASSERT_TRUE(stats.find("ok")->boolean()) << stats.dump();
    EXPECT_EQ(stats.find("registry")->find("models")->number(), 1.0);
    EXPECT_EQ(stats.find("registry")->find("datasets")->number(),
              2.0);
    EXPECT_GT(stats.find("registry")->find("resident_bytes")->number(),
              0.0);
    const Json* plan = stats.find("plan_cache");
    ASSERT_NE(plan, nullptr);
    EXPECT_GE(plan->find("hits")->number(), 1.0);
    EXPECT_GE(plan->find("misses")->number(), 1.0);
    // `accepted` increments synchronously at submit; `completed`
    // lags the response by the pool wrapper's bookkeeping, so it is
    // not asserted here.
    EXPECT_GE(stats.find("admission")->find("accepted")->number(),
              2.0);

    client.close();
    server.stop();
    EXPECT_FALSE(server.running());
}

TEST_F(ServeEndToEnd, EstimateScreensMappingsWithoutATraceRun)
{
    serve::Server server;
    server.start();
    serve::Client client;
    client.connect(server.port());

    const Json compiled = client.request(
        parseJson(R"({"op":"compile","accel":"gamma"})"));
    ASSERT_TRUE(compiled.find("ok")->boolean()) << compiled.dump();
    const std::string model = compiled.find("model")->str();
    const std::string da =
        client.request(parseJson(loadLine(aPath_, "A", "M")))
            .find("dataset")
            ->str();
    const std::string db =
        client.request(parseJson(loadLine(bPath_, "B", "N")))
            .find("dataset")
            ->str();
    const std::string bindings = R"(","bindings":{"A":")" + da +
                                 R"(","B":")" + db + R"("}})";

    const Json est = parseJson(client.requestLine(
        R"({"op":"estimate","model":")" + model + bindings));
    ASSERT_TRUE(est.find("ok")->boolean()) << est.dump();
    EXPECT_EQ(est.find("cache")->str(), "miss");
    EXPECT_GT(est.find("exec_seconds_est")->number(), 0.0);
    EXPECT_GT(est.find("traffic_bytes_est")->number(), 0.0);
    EXPECT_GT(est.find("compute_muls_est")->number(), 0.0);
    EXPECT_GE(est.find("latency_ms")->number(), 0.0);

    // Re-estimating the same (model, bindings) serves the cached
    // prediction, identically.
    const Json again = parseJson(client.requestLine(
        R"({"op":"estimate","model":")" + model + bindings));
    ASSERT_TRUE(again.find("ok")->boolean()) << again.dump();
    EXPECT_EQ(again.find("cache")->str(), "hit");
    EXPECT_DOUBLE_EQ(again.find("exec_seconds_est")->number(),
                     est.find("exec_seconds_est")->number());

    // The prediction screens against the trace run's answer: same
    // workload, same model, no order-of-magnitude surprises.
    const Json eval = parseJson(client.requestLine(
        R"({"op":"evaluate","model":")" + model + bindings));
    ASSERT_TRUE(eval.find("ok")->boolean()) << eval.dump();
    const double traced = eval.find("exec_seconds")->number();
    const double predicted = est.find("exec_seconds_est")->number();
    EXPECT_GT(predicted, traced / 10.0);
    EXPECT_LT(predicted, traced * 10.0);

    client.close();
    server.stop();
}

TEST_F(ServeEndToEnd, EvictionUnderBudgetAnswersEvictedNotUnknown)
{
    // Size the budget from the actual datasets so exactly the cold
    // dataset is evicted: model (64 KiB estimate) + both datasets
    // exceed it, model + one dataset fits.
    const std::uint64_t bytesA =
        workloads::readMatrixMarketPacked(aPath_, "A", {"K", "M"})
            .residentBytes();
    const std::uint64_t bytesB =
        workloads::readMatrixMarketPacked(bPath_, "B", {"K", "N"})
            .residentBytes();
    serve::ServerOptions opts;
    opts.memoryBudgetBytes = 64 * 1024 + bytesA + bytesB -
                             std::min(bytesA, bytesB) / 2;
    serve::Server server(opts);

    const Json compiled = parseJson(
        server.handleLine(R"({"op":"compile","accel":"gamma"})"));
    const std::string model = compiled.find("model")->str();

    const Json da = parseJson(
        server.handleLine(loadLine(aPath_, "A", "M")));
    ASSERT_TRUE(da.find("ok")->boolean()) << da.dump();
    const std::string staleId = da.find("dataset")->str();
    // Touch the model so dataset A is the coldest entry.
    server.handleLine(R"({"op":"sharding_report","model":")" + model +
                      "\"}");
    const Json db = parseJson(
        server.handleLine(loadLine(bPath_, "B", "N")));
    ASSERT_TRUE(db.find("ok")->boolean()) << db.dump();

    // Loading B pushed resident bytes past the budget; eviction
    // brought them back under it.
    const serve::Registry::Stats stats = server.registry().stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_LE(stats.residentBytes, stats.budgetBytes);

    const Json r = parseJson(server.handleLine(
        R"({"op":"evaluate","model":")" + model +
        R"(","bindings":{"A":")" + staleId + R"("}})"));
    ASSERT_NE(r.find("error"), nullptr) << r.dump();
    EXPECT_EQ(r.find("error")->find("code")->str(), "evicted");
    EXPECT_EQ(r.find("error")->find("key")->str(), staleId);
    EXPECT_NE(r.find("error")->find("message")->str().find(
                  "re-register"),
              std::string::npos);
}

TEST_F(ServeEndToEnd, StopDrainsAndThenShedsWithShuttingDown)
{
    serve::Server server;
    server.start();
    serve::Client client;
    client.connect(server.port());
    const Json compiled = client.request(
        parseJson(R"({"op":"compile","accel":"gamma"})"));
    ASSERT_TRUE(compiled.find("ok")->boolean());

    server.stop(); // drains; the connection is shut down after
    EXPECT_FALSE(server.running());
    // The drained server's protocol core keeps answering (the daemon
    // has exited by now, but no request is ever silently dropped):
    // new evaluations are shed with shutting_down.
    const Json r = parseJson(server.handleLine(
        R"({"op":"evaluate","model":")" +
        compiled.find("model")->str() + R"(","bindings":{}})"));
    ASSERT_NE(r.find("error"), nullptr) << r.dump();
    EXPECT_EQ(r.find("error")->find("code")->str(), "shutting_down");
    server.stop(); // idempotent
}

TEST_F(ServeEndToEnd, ConcurrentClientsGetConsistentAnswers)
{
    serve::Server server;
    server.start();

    serve::Client setup;
    setup.connect(server.port());
    const Json compiled = setup.request(
        parseJson(R"({"op":"compile","accel":"gamma"})"));
    const std::string model = compiled.find("model")->str();
    const std::string da = setup.request(parseJson(loadLine(
                                             aPath_, "A", "M")))
                               .find("dataset")
                               ->str();
    const std::string db = setup.request(parseJson(loadLine(
                                             bPath_, "B", "N")))
                               .find("dataset")
                               ->str();
    const std::string evaluate =
        R"({"op":"evaluate","model":")" + model +
        R"(","bindings":{"A":")" + da + R"(","B":")" + db +
        R"("},"threads":1})";
    const Json reference = parseJson(setup.requestLine(evaluate));
    ASSERT_TRUE(reference.find("ok")->boolean()) << reference.dump();
    const double expected = reference.find("exec_seconds")->number();

    constexpr int kClients = 4;
    constexpr int kRequests = 5;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&] {
            serve::Client client;
            client.connect(server.port());
            for (int i = 0; i < kRequests; ++i) {
                const Json r =
                    parseJson(client.requestLine(evaluate));
                const Json* okField = r.find("ok");
                if (okField == nullptr || !okField->boolean() ||
                    r.find("exec_seconds")->number() != expected)
                    mismatches.fetch_add(1);
            }
        });
    }
    for (std::thread& t : clients)
        t.join();
    EXPECT_EQ(mismatches.load(), 0);
    server.stop();
}

TEST_F(ServeEndToEnd, DeadlineExceededIsStructuredPromptAndRecoverable)
{
    serve::Server server;
    server.start();
    serve::Client client;
    client.connect(server.port());
    const BigWorkload w = setUpBig(client);

    // Calibrate the budget from this machine's actual wall time so
    // the test carries no absolute timing assumptions: take the
    // faster of two full runs (the second rides the cached plan).
    const Json full1 =
        parseJson(client.requestLine(evalLine(w, R"(,"threads":1)")));
    ASSERT_TRUE(full1.find("ok")->boolean()) << full1.dump();
    const Json full2 =
        parseJson(client.requestLine(evalLine(w, R"(,"threads":1)")));
    ASSERT_TRUE(full2.find("ok")->boolean()) << full2.dump();
    const double wall =
        std::min(full1.find("elapsed_ms")->number(),
                 full2.find("elapsed_ms")->number());
    const double deadline =
        std::clamp(wall / 8.0, 5.0, 200.0);
    // The workload is sized so the serial run dwarfs the budget even
    // at the clamp floor; if this ever fires, grow the matrices.
    ASSERT_GT(wall, 4.0 * deadline) << "workload too small to test "
                                       "deadlines: wall="
                                    << wall << "ms";

    // A budget far below the wall time comes back as a structured
    // deadline_exceeded, promptly (within 2x the budget — the poll
    // granularity is far finer than the run), at every thread count.
    for (const char* threads : {"1", "4"}) {
        const Json r = parseJson(client.requestLine(evalLine(
            w, std::string(",\"threads\":") + threads +
                   ",\"deadline_ms\":" + std::to_string(deadline))));
        expectCancelled(r, "deadline_exceeded", "deadline");
        EXPECT_LE(r.find("elapsed_ms")->number(), 2.0 * deadline)
            << "threads=" << threads << ": " << r.dump();
    }

    // The daemon is immediately healthy: the next unbudgeted run
    // succeeds (the cancelled runs dropped their plan-cache state,
    // so this re-instantiates rather than riding a poisoned entry).
    const Json after =
        parseJson(client.requestLine(evalLine(w, R"(,"threads":1)")));
    ASSERT_TRUE(after.find("ok")->boolean()) << after.dump();
    EXPECT_DOUBLE_EQ(after.find("exec_seconds")->number(),
                     full1.find("exec_seconds")->number());

    client.close();
    server.stop();
}

TEST_F(ServeEndToEnd, CancelOpStopsARunningEvaluateById)
{
    serve::Server server;
    server.start();
    serve::Client client;
    client.connect(server.port());
    const BigWorkload w = setUpBig(client);

    // Launch a long evaluate under a known id on its own connection.
    std::atomic<bool> done{false};
    Json result;
    std::thread runner([&] {
        serve::Client c2;
        c2.connect(server.port());
        result = parseJson(c2.requestLine(
            evalLine(w, R"(,"threads":1,"id":"slow")")));
        done.store(true);
        c2.close();
    });

    // Spam `cancel` from a second connection until it reports a
    // match; the run takes hundreds of milliseconds, the loopback
    // round trip microseconds.
    double matched = 0.0;
    while (!done.load() && matched < 1.0) {
        const Json r = client.request(
            parseJson(R"({"op":"cancel","target":"slow"})"));
        ASSERT_TRUE(r.find("ok")->boolean()) << r.dump();
        matched = r.find("cancelled")->number();
    }
    runner.join();
    EXPECT_GE(matched, 1.0);
    expectCancelled(result, "cancelled", "user");

    // A finished request is out of the in-flight table.
    const Json gone = client.request(
        parseJson(R"({"op":"cancel","target":"slow"})"));
    EXPECT_DOUBLE_EQ(gone.find("cancelled")->number(), 0.0);

    // And the daemon still evaluates cleanly.
    const Json after =
        parseJson(client.requestLine(evalLine(w, R"(,"threads":1)")));
    EXPECT_TRUE(after.find("ok")->boolean()) << after.dump();

    client.close();
    server.stop();
}

TEST_F(ServeEndToEnd, StopCancelsInFlightRunsWithShutdownReason)
{
    serve::Server server;
    server.start();
    serve::Client client;
    client.connect(server.port());
    const BigWorkload w = setUpBig(client);

    Json result;
    std::thread runner([&] {
        serve::Client c2;
        c2.connect(server.port());
        result = parseJson(c2.requestLine(
            evalLine(w, R"(,"threads":1,"id":"doomed")")));
        c2.close();
    });

    // Wait until the evaluation is structurally in flight, then stop:
    // the drain must not wait out the full run — shutdown reaches it
    // through the same token path as a user cancel.
    for (;;) {
        const Json s =
            client.request(parseJson(R"({"op":"stats"})"));
        if (s.find("admission")->find("in_flight")->number() >= 1.0)
            break;
        std::this_thread::yield();
    }
    server.stop();
    runner.join();
    expectCancelled(result, "cancelled", "shutdown");
    client.close();
}

} // namespace
} // namespace teaal
