/**
 * @file
 * `teaal-serve` — the simulation-as-a-service daemon. Binds the
 * newline-delimited JSON protocol (serve/server.hpp) on loopback and
 * serves until SIGINT/SIGTERM, then drains gracefully: in-flight
 * evaluations finish and answer before the process exits.
 *
 *   teaal-serve [--port N] [--budget-mb N] [--max-in-flight N]
 *               [--max-threads N]
 *
 * Prints one "teaal-serve: listening on 127.0.0.1:<port>" line to
 * stdout when ready and "teaal-serve: drained, exiting" after a clean
 * shutdown — the CI smoke job greps for both.
 *
 * In failpoint-enabled builds (-DTEAAL_FAILPOINTS=ON) the daemon
 * honors TEAAL_FAILPOINTS='name=spec;...' at startup, so the CI fault
 * smoke can inject e.g. serve.registry.evict_inflight without
 * touching the protocol.
 */
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "serve/server.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace
{

// Async-signal-safe: the handler only sets a flag; main() polls it.
volatile std::sig_atomic_t g_stop = 0;

extern "C" void
onSignal(int)
{
    g_stop = 1;
}

long
parseLong(const char* flag, const char* text)
{
    char* end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < 0) {
        std::fprintf(stderr, "teaal-serve: %s expects a non-negative "
                             "integer, got '%s'\n",
                     flag, text);
        std::exit(2);
    }
    return v;
}

} // namespace

int
main(int argc, char** argv)
{
    teaal::serve::ServerOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--port" && has_value) {
            opts.port = static_cast<int>(parseLong("--port", argv[++i]));
        } else if (arg == "--budget-mb" && has_value) {
            opts.memoryBudgetBytes = static_cast<std::uint64_t>(
                                         parseLong("--budget-mb",
                                                   argv[++i]))
                                     << 20;
        } else if (arg == "--max-in-flight" && has_value) {
            opts.maxInFlight = static_cast<unsigned>(
                parseLong("--max-in-flight", argv[++i]));
        } else if (arg == "--max-threads" && has_value) {
            opts.maxEvalThreads = static_cast<unsigned>(
                parseLong("--max-threads", argv[++i]));
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: teaal-serve [--port N] [--budget-mb N] "
                "[--max-in-flight N] [--max-threads N]\n");
            return 0;
        } else {
            std::fprintf(stderr, "teaal-serve: unknown flag '%s' "
                                 "(see --help)\n",
                         arg.c_str());
            return 2;
        }
    }

    try {
        const std::size_t armed =
            teaal::util::failpoint::configureFromEnv();
        if (armed > 0)
            std::printf("teaal-serve: %zu failpoint(s) armed from "
                        "TEAAL_FAILPOINTS\n",
                        armed);
    } catch (const teaal::SpecError& e) {
        std::fprintf(stderr, "teaal-serve: %s\n", e.what());
        return 2;
    }

    teaal::serve::Server server(opts);
    try {
        server.start();
    } catch (const teaal::SpecError& e) {
        std::fprintf(stderr, "teaal-serve: %s\n", e.what());
        return 1;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    std::printf("teaal-serve: listening on 127.0.0.1:%d\n",
                server.port());
    std::fflush(stdout);

    while (g_stop == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::printf("teaal-serve: draining\n");
    std::fflush(stdout);
    server.stop();
    std::printf("teaal-serve: drained, exiting\n");
    return 0;
}
