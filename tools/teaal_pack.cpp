/**
 * @file
 * `teaal-pack` — convert a matrix to the mmap-able packed store
 * format (storage/store.hpp), or generate a synthetic one at scale.
 *
 *   teaal-pack <input.mtx> <output.teaal> [--name A] [--ranks K,M]
 *   teaal-pack --synth rows,cols,nnz <output.teaal> [--seed N] ...
 *   teaal-pack --verify <store.teaal>
 *
 * Both paths stream: the Matrix Market reader sorts entries once and
 * bulk-appends to a storage::PackedBuilder (no fibertree is ever
 * built), and --synth draws a Zipf-degree power-law matrix row by row
 * straight into the builder — peak memory is one row's worth of
 * columns, so CI can mint stores 10x+ larger than anything the
 * in-memory datasets produce. --verify maps an existing store and
 * checksums its payload (the one read path that touches every byte).
 *
 * Exit status: 0 on success, 1 on store/model errors (message on
 * stderr), 2 on usage errors.
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "storage/packed.hpp"
#include "storage/store.hpp"
#include "util/error.hpp"
#include "util/random.hpp"
#include "workloads/mtx.hpp"

namespace
{

void
usage()
{
    std::printf(
        "usage: teaal-pack <input.mtx> <output.teaal> [options]\n"
        "       teaal-pack --synth ROWS,COLS,NNZ <output.teaal> "
        "[options]\n"
        "       teaal-pack --verify <store.teaal>\n"
        "\n"
        "Convert a Matrix Market file (or a generated power-law\n"
        "matrix) to a TeAAL packed store: a single checksummed file\n"
        "that runs mmap in milliseconds instead of re-parsing and\n"
        "re-packing per process.\n"
        "\n"
        "options:\n"
        "  --name NAME    tensor name in the store (default A)\n"
        "  --ranks R1,R2  rank ids, row rank first (default K,M)\n"
        "  --seed N       --synth RNG seed (default 42)\n"
        "  --verify       after writing, re-map and checksum the\n"
        "                 payload (also the one-argument mode above)\n");
}

struct Dims
{
    teaal::ft::Coord rows = 0;
    teaal::ft::Coord cols = 0;
    std::size_t nnz = 0;
};

bool
parseDims(const char* text, Dims& d)
{
    long long r = 0, c = 0, n = 0;
    if (std::sscanf(text, "%lld,%lld,%lld", &r, &c, &n) != 3 || r <= 0 ||
        c <= 0 || n <= 0)
        return false;
    d.rows = static_cast<teaal::ft::Coord>(r);
    d.cols = static_cast<teaal::ft::Coord>(c);
    d.nnz = static_cast<std::size_t>(n);
    return true;
}

std::vector<std::string>
splitRanks(const std::string& text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (;;) {
        const std::size_t comma = text.find(',', start);
        out.push_back(text.substr(start, comma - start));
        if (comma == std::string::npos)
            return out;
        start = comma + 1;
    }
}

/**
 * Stream a power-law (Zipf row degree, hub-skewed columns) matrix
 * straight into a PackedBuilder: same distribution family as
 * workloads::powerLawMatrix, but generated row-major so rows append
 * in order and only one row's columns are resident at a time.
 */
teaal::storage::PackedTensor
synthPowerLaw(const std::string& name,
              const std::vector<std::string>& rank_ids, Dims d,
              std::uint64_t seed)
{
    teaal::Xoshiro256 rng(seed);
    const auto rows = static_cast<std::size_t>(d.rows);

    // Zipf normalizer: sum over i of (i+1)^-0.8.
    double total = 0;
    for (std::size_t i = 0; i < rows; ++i)
        total += 1.0 / std::pow(static_cast<double>(i + 1), 0.8);

    teaal::storage::PackedBuilder builder(
        name, rank_ids, {d.rows, d.cols});
    builder.reserve(d.nnz);

    std::vector<teaal::ft::Coord> cols;
    std::size_t emitted = 0;
    for (std::size_t i = 0; i < rows && emitted < d.nnz; ++i) {
        const double w =
            1.0 / std::pow(static_cast<double>(i + 1), 0.8) / total;
        auto degree = static_cast<std::size_t>(
            std::ceil(w * static_cast<double>(d.nnz)));
        degree = std::min(degree, d.nnz - emitted);
        degree = std::min(degree, static_cast<std::size_t>(d.cols));
        if (degree == 0)
            continue;
        cols.clear();
        bool saturated = false;
        while (cols.size() < degree) {
            const std::size_t before = cols.size();
            const std::size_t need = degree - before;
            for (std::size_t e = 0; e < need + need / 4 + 4; ++e) {
                if (saturated) {
                    // Dense row ran out of fresh skewed draws:
                    // uniform draws terminate (coupon collector).
                    cols.push_back(static_cast<teaal::ft::Coord>(
                        rng.below(static_cast<std::uint64_t>(d.cols))));
                    continue;
                }
                // Square the uniform draw to skew toward low column
                // indices (hub vertices), like
                // workloads::powerLawMatrix.
                const double u = rng.uniform();
                cols.push_back(std::min(
                    static_cast<teaal::ft::Coord>(
                        u * u * static_cast<double>(d.cols)),
                    d.cols - 1));
            }
            std::sort(cols.begin(), cols.end());
            cols.erase(std::unique(cols.begin(), cols.end()),
                       cols.end());
            if (cols.size() > degree)
                cols.resize(degree);
            if (cols.size() == before)
                saturated = true;
        }
        const auto row = static_cast<teaal::ft::Coord>(i);
        for (const teaal::ft::Coord col : cols) {
            const teaal::ft::Coord point[2] = {row, col};
            builder.append(std::span<const teaal::ft::Coord>(point, 2),
                           1.0 + rng.uniform());
            ++emitted;
        }
    }
    return std::move(builder).finish();
}

} // namespace

int
main(int argc, char** argv)
{
    std::string input;
    std::string output;
    std::string name = "A";
    std::vector<std::string> rank_ids = {"K", "M"};
    Dims synth;
    bool do_synth = false;
    bool do_verify = false;
    std::uint64_t seed = 42;

    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--name" && has_value) {
            name = argv[++i];
        } else if (arg == "--ranks" && has_value) {
            rank_ids = splitRanks(argv[++i]);
        } else if (arg == "--seed" && has_value) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--synth" && has_value) {
            if (!parseDims(argv[++i], synth)) {
                std::fprintf(stderr,
                             "teaal-pack: --synth expects "
                             "ROWS,COLS,NNZ (positive integers)\n");
                return 2;
            }
            do_synth = true;
        } else if (arg == "--verify") {
            do_verify = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "teaal-pack: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        } else {
            positional.push_back(arg);
        }
    }

    if (rank_ids.size() != 2) {
        std::fprintf(stderr,
                     "teaal-pack: --ranks expects exactly two ids\n");
        return 2;
    }

    try {
        if (do_synth) {
            if (positional.size() != 1) {
                usage();
                return 2;
            }
            output = positional[0];
            teaal::storage::PackedTensor t =
                synthPowerLaw(name, rank_ids, synth, seed);
            teaal::storage::writeStore(output, t);
        } else if (do_verify && positional.size() == 1) {
            // Verify-only mode: map + full payload checksum.
            teaal::storage::PackedTensor t = teaal::storage::mapStore(
                positional[0], /*verifyPayload=*/true);
            std::printf("teaal-pack: %s ok (%s, %zu nnz)\n",
                        positional[0].c_str(), t.name().c_str(),
                        t.values().size());
            return 0;
        } else {
            if (positional.size() != 2) {
                usage();
                return 2;
            }
            input = positional[0];
            output = positional[1];
            teaal::storage::PackedTensor t =
                teaal::workloads::readMatrixMarketPacked(input, name,
                                                         rank_ids);
            teaal::storage::writeStore(output, t);
        }

        if (do_verify) {
            teaal::storage::PackedTensor t =
                teaal::storage::mapStore(output, /*verifyPayload=*/true);
            (void)t;
        }
        std::printf("teaal-pack: wrote %s\n", output.c_str());
    } catch (const std::exception& e) {
        std::fprintf(stderr, "teaal-pack: %s\n", e.what());
        return 1;
    }
    return 0;
}
